//! Dense `f32` vector kernels.
//!
//! These are the innermost loops of both training (energy gradients) and
//! inference (similarity search over all candidate entities), so they take
//! plain slices and avoid allocation.

/// Dot product. Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f32]) -> f32 {
    norm2_sq(a).sqrt()
}

/// Manhattan (L1) norm.
#[inline]
pub fn norm1(a: &[f32]) -> f32 {
    a.iter().map(|x| x.abs()).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `a *= s`.
#[inline]
pub fn scale(a: &mut [f32], s: f32) {
    for x in a {
        *x *= s;
    }
}

/// Normalizes `a` to unit L2 norm in place; leaves zero vectors untouched.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm2(a);
    if n > 0.0 {
        scale(a, 1.0 / n);
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_sq(a, b).sqrt()
}

/// Manhattan distance.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Cosine similarity in `[-1, 1]`; 0 if either vector is zero.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm2(a);
    let nb = norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Elementwise `out = a - b` into a caller-provided buffer.
#[inline]
pub fn sub_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Elementwise `out = a + b` into a caller-provided buffer.
#[inline]
pub fn add_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Elementwise Hadamard product `out = a ⊙ b`.
#[inline]
pub fn mul_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    #[test]
    fn basic_kernels() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 4.0 - 10.0 + 18.0);
        assert_eq!(norm1(&b), 15.0);
        assert!((norm2(&a) - 14f32.sqrt()).abs() < 1e-6);
        assert!((euclidean(&a, &b) - ((9.0f32 + 49.0 + 9.0).sqrt())).abs() < 1e-6);
        assert_eq!(manhattan(&a, &b), 3.0 + 7.0 + 3.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
        scale(&mut y, 2.0);
        assert_eq!(y, [21.0, 42.0]);
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[5.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 3.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut z = [0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
        let mut v = [3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn elementwise_buffers() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        let mut out = [0.0; 2];
        sub_into(&a, &b, &mut out);
        assert_eq!(out, [-2.0, -3.0]);
        add_into(&a, &b, &mut out);
        assert_eq!(out, [4.0, 7.0]);
        mul_into(&a, &b, &mut out);
        assert_eq!(out, [3.0, 10.0]);
    }

    props! {
        #[test]
        fn cosine_is_bounded(a in vec_of(-10f32..10.0, 4), b in vec_of(-10f32..10.0, 4)) {
            let c = cosine(&a, &b);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn triangle_inequality_euclidean(
            a in vec_of(-5f32..5.0, 3),
            b in vec_of(-5f32..5.0, 3),
            c in vec_of(-5f32..5.0, 3),
        ) {
            prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-4);
        }

        #[test]
        fn normalize_gives_unit_norm(mut a in vec_of(-10f32..10.0, 5)) {
            prop_assume!(norm2(&a) > 1e-3);
            normalize(&mut a);
            prop_assert!((norm2(&a) - 1.0).abs() < 1e-4);
        }
    }
}
