//! Orthogonal Procrustes \[64\]: the optimal *rotation* mapping one point
//! set onto another, `min_M ‖M·X − Y‖_F` subject to `MᵀM = I`. The paper's
//! future-work section (Sect. 7.2) names it as a building block for
//! unsupervised cross-lingual alignment; it is also the principled way to
//! constrain MTransE-style transformation matrices.
//!
//! The solution is `M = U·Vᵀ` where `Y·Xᵀ = U·Σ·Vᵀ`; the SVD here is a
//! two-sided Jacobi iteration, exact enough for the small (`d×d`) matrices
//! embedding transformations use.

use crate::matrix::Matrix;

/// Jacobi eigendecomposition of a symmetric matrix `A = Q·Λ·Qᵀ`.
/// Returns `(eigenvalues, Q)` with eigenvectors in `Q`'s columns.
fn jacobi_eigen(a: &Matrix, sweeps: usize) -> (Vec<f32>, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "symmetric matrix required");
    let mut m = a.clone();
    let mut q = Matrix::identity(n);
    for _ in 0..sweeps {
        let mut off = 0.0f32;
        for p in 0..n {
            for r in (p + 1)..n {
                off += m[(p, r)] * m[(p, r)];
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for r in (p + 1)..n {
                let apq = m[(p, r)];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(r, r)];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and r of m, and columns of q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, r)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, r)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(r, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(r, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, r)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, r)] = s * qkp + c * qkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| m[(i, i)]).collect();
    (eig, q)
}

/// The polar-orthogonal factor of a square matrix: the nearest orthogonal
/// matrix to `a` (the `U·Vᵀ` of its SVD), computed via the eigen
/// decomposition of `aᵀa`.
pub fn nearest_orthogonal(a: &Matrix) -> Matrix {
    let n = a.rows();
    assert_eq!(n, a.cols(), "square matrix required");
    // aᵀa = V Σ² Vᵀ; a V Σ⁻¹ = U; result = U Vᵀ = a V Σ⁻¹ Vᵀ.
    let ata = a.transpose().matmul(a);
    let (eig, v) = jacobi_eigen(&ata, 30);
    // Σ⁻¹ with degenerate directions clamped.
    let mut vsinv = Matrix::zeros(n, n);
    for i in 0..n {
        let s = eig[i].max(1e-12).sqrt();
        for r in 0..n {
            vsinv[(r, i)] = v[(r, i)] / s;
        }
    }
    a.matmul(&vsinv).matmul(&v.transpose())
}

/// Solves orthogonal Procrustes: the rotation `M` minimizing `‖M·X − Y‖`
/// over the paired columns of `x` and `y` (`points × dim`, row-major point
/// lists). Returns a `dim × dim` orthogonal matrix.
pub fn procrustes(x: &[f32], y: &[f32], dim: usize) -> Matrix {
    assert_eq!(x.len(), y.len(), "paired point sets");
    assert_eq!(x.len() % dim, 0);
    let n = x.len() / dim;
    // C = Σᵢ yᵢ·xᵢᵀ  (dim × dim cross-covariance); M = polar(C).
    let mut c = Matrix::zeros(dim, dim);
    for p in 0..n {
        let xp = &x[p * dim..(p + 1) * dim];
        let yp = &y[p * dim..(p + 1) * dim];
        for i in 0..dim {
            for j in 0..dim {
                c[(i, j)] += yp[i] * xp[j];
            }
        }
    }
    nearest_orthogonal(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use openea_runtime::rng::SmallRng;
    use openea_runtime::rng::{Rng, SeedableRng};

    fn random_rotation(dim: usize, rng: &mut SmallRng) -> Matrix {
        let mut m = Matrix::random_uniform(dim, dim, 1.0, rng);
        m.orthonormalize_rows();
        m
    }

    #[test]
    fn jacobi_diagonalizes_symmetric_matrices() {
        let mut rng = SmallRng::seed_from_u64(0);
        let b = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        let a = b.transpose().matmul(&b); // symmetric PSD
        let (eig, q) = jacobi_eigen(&a, 30);
        // A·qᵢ = λᵢ·qᵢ for each eigenpair.
        for i in 0..4 {
            let qi: Vec<f32> = (0..4).map(|r| q[(r, i)]).collect();
            let aqi = a.matvec(&qi);
            for r in 0..4 {
                assert!(
                    (aqi[r] - eig[i] * qi[r]).abs() < 1e-3,
                    "pair {i}: {aqi:?} vs λ={}",
                    eig[i]
                );
            }
        }
    }

    #[test]
    fn nearest_orthogonal_is_orthogonal() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Matrix::random_uniform(5, 5, 2.0, &mut rng);
        let o = nearest_orthogonal(&a);
        let ot_o = o.transpose().matmul(&o);
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (ot_o[(i, j)] - expect).abs() < 1e-3,
                    "({i},{j}) = {}",
                    ot_o[(i, j)]
                );
            }
        }
    }

    #[test]
    fn procrustes_recovers_a_rotation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let dim = 6;
        let rot = random_rotation(dim, &mut rng);
        // Points y = rot·x (+ tiny noise).
        let n = 50;
        let mut x = Vec::with_capacity(n * dim);
        let mut y = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let p: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let q = rot.matvec(&p);
            x.extend(&p);
            y.extend(q.iter().map(|v| v + rng.gen_range(-0.005f32..0.005)));
        }
        let m = procrustes(&x, &y, dim);
        // M ≈ rot: mapped points land on their targets.
        let mut err = 0.0f32;
        for p in 0..n {
            let mapped = m.matvec(&x[p * dim..(p + 1) * dim]);
            err += vecops::euclidean(&mapped, &y[p * dim..(p + 1) * dim]);
        }
        assert!(err / (n as f32) < 0.05, "mean error {}", err / n as f32);
    }

    #[test]
    fn procrustes_beats_identity_on_rotated_data() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dim = 4;
        let rot = random_rotation(dim, &mut rng);
        let n = 30;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let p: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            x.extend(&p);
            y.extend(rot.matvec(&p));
        }
        let m = procrustes(&x, &y, dim);
        let residual = |map: &Matrix| -> f32 {
            (0..n)
                .map(|p| {
                    let mapped = map.matvec(&x[p * dim..(p + 1) * dim]);
                    vecops::euclidean_sq(&mapped, &y[p * dim..(p + 1) * dim])
                })
                .sum()
        };
        assert!(residual(&m) < 0.1 * residual(&Matrix::identity(dim)));
    }
}
