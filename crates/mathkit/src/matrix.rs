//! A small row-major dense matrix used for transformation matrices (MTransE,
//! SEA), relation-specific projections (TransR) and GCN weights.

use crate::vecops;
use openea_runtime::rng::Rng;

/// Row-major dense `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix (square).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Uniform random matrix in `[-scale, scale]`.
    pub fn random_uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialization.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self::random_uniform(rows, cols, scale, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix–vector product `out = M · x`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = vecops::dot(self.row(i), x);
        }
    }

    /// Matrix–vector product, allocating.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Transposed matrix–vector product `out = Mᵀ · x`.
    pub fn matvec_t_into(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            vecops::axpy(xi, self.row(i), out);
        }
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                vecops::axpy(a, orow, out_row);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        vecops::norm2(&self.data)
    }

    /// Makes the rows orthonormal in place via modified Gram–Schmidt.
    /// Rows that become (numerically) zero are re-seeded from the identity.
    pub fn orthonormalize_rows(&mut self) {
        for i in 0..self.rows {
            for j in 0..i {
                let d = vecops::dot(self.row(i), self.row(j));
                // Split borrows: copy row j, then update row i.
                let rj: Vec<f32> = self.row(j).to_vec();
                vecops::axpy(-d, &rj, self.row_mut(i));
            }
            let n = vecops::norm2(self.row(i));
            if n > 1e-6 {
                vecops::scale(self.row_mut(i), 1.0 / n);
            } else {
                let cols = self.cols;
                let r = self.row_mut(i);
                r.fill(0.0);
                r[i % cols] = 1.0;
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0);
        let m = Matrix::random_uniform(3, 5, 1.0, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = Matrix::random_uniform(4, 3, 1.0, &mut rng);
        let x = vec![0.5, -1.0, 2.0, 0.25];
        let mut out = vec![0.0; 3];
        m.matvec_t_into(&x, &mut out);
        let expected = m.transpose().matvec(&x);
        for (a, b) in out.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn orthonormalize_produces_orthonormal_rows() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut m = Matrix::random_uniform(4, 4, 1.0, &mut rng);
        m.orthonormalize_rows();
        for i in 0..4 {
            for j in 0..4 {
                let d = vecops::dot(m.row(i), m.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-4, "rows {i},{j}: {d}");
            }
        }
    }

    #[test]
    fn orthonormalize_rescues_degenerate_rows() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 2.0, 0.0]); // parallel rows
        m.orthonormalize_rows();
        let d = vecops::dot(m.row(0), m.row(1));
        assert!(d.abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn xavier_scale_shrinks_with_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let big = Matrix::xavier(100, 100, &mut rng);
        let bound = (6.0 / 200.0f32).sqrt();
        assert!(big.data().iter().all(|&x| x.abs() <= bound + 1e-6));
    }
}
