//! The three loss families the paper catalogues for the embedding module
//! (Sect. 2.2.1): marginal ranking, logistic, and limit-based.
//!
//! Each function returns `(loss, d_loss/d_pos_energy, d_loss/d_neg_energy)`
//! so that models can chain the energy gradients by hand. Energies are
//! *costs*: lower is more plausible.

use crate::vecops::sigmoid;

/// Marginal ranking loss `max(0, γ + φ(pos) − φ(neg))` (TransE's objective).
pub fn margin_ranking_loss(pos_energy: f32, neg_energy: f32, margin: f32) -> (f32, f32, f32) {
    let raw = margin + pos_energy - neg_energy;
    if raw > 0.0 {
        (raw, 1.0, -1.0)
    } else {
        (0.0, 0.0, 0.0)
    }
}

/// Logistic loss `softplus(φ(pos)) + softplus(−φ(neg))` treating low energy
/// as high plausibility (used by HolE/ComplEx-style models).
pub fn logistic_loss(pos_energy: f32, neg_energy: f32) -> (f32, f32, f32) {
    let softplus = |x: f32| {
        if x > 20.0 {
            x
        } else {
            (1.0 + x.exp()).ln()
        }
    };
    let loss = softplus(pos_energy) + softplus(-neg_energy);
    (loss, sigmoid(pos_energy), -sigmoid(-neg_energy))
}

/// Limit-based loss `max(0, φ(pos) − λ₁) + μ·max(0, λ₂ − φ(neg))`
/// (BootEA's objective [73, 91]): positives are pushed below the absolute
/// threshold `λ₁` and negatives above `λ₂`, decoupling the two sides.
pub fn limit_based_loss(
    pos_energy: f32,
    neg_energy: f32,
    lambda_pos: f32,
    lambda_neg: f32,
    mu: f32,
) -> (f32, f32, f32) {
    let mut loss = 0.0;
    let mut dpos = 0.0;
    let mut dneg = 0.0;
    if pos_energy > lambda_pos {
        loss += pos_energy - lambda_pos;
        dpos = 1.0;
    }
    if neg_energy < lambda_neg {
        loss += mu * (lambda_neg - neg_energy);
        dneg = -mu;
    }
    (loss, dpos, dneg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    #[test]
    fn margin_loss_active_and_inactive() {
        let (l, dp, dn) = margin_ranking_loss(1.0, 1.5, 1.0);
        assert!((l - 0.5).abs() < 1e-6);
        assert_eq!((dp, dn), (1.0, -1.0));
        let (l, dp, dn) = margin_ranking_loss(0.1, 5.0, 1.0);
        assert_eq!(l, 0.0);
        assert_eq!((dp, dn), (0.0, 0.0));
    }

    #[test]
    fn logistic_loss_decreases_with_separation() {
        let (tight, ..) = logistic_loss(1.0, 1.0);
        let (loose, ..) = logistic_loss(-3.0, 5.0);
        assert!(loose < tight);
    }

    #[test]
    fn logistic_loss_stable_for_large_energies() {
        let (l, dp, dn) = logistic_loss(100.0, -100.0);
        assert!(l.is_finite());
        assert!((dp - 1.0).abs() < 1e-5);
        assert!((dn + 1.0).abs() < 1e-5);
    }

    #[test]
    fn limit_loss_thresholds() {
        // Positive below λ₁ and negative above λ₂: no loss.
        let (l, dp, dn) = limit_based_loss(0.5, 3.0, 1.0, 2.0, 0.2);
        assert_eq!((l, dp, dn), (0.0, 0.0, 0.0));
        // Positive too high.
        let (l, dp, _) = limit_based_loss(1.5, 3.0, 1.0, 2.0, 0.2);
        assert!((l - 0.5).abs() < 1e-6);
        assert_eq!(dp, 1.0);
        // Negative too low, weighted by μ.
        let (l, _, dn) = limit_based_loss(0.5, 1.0, 1.0, 2.0, 0.2);
        assert!((l - 0.2).abs() < 1e-6);
        assert!((dn + 0.2).abs() < 1e-6);
    }

    props! {
        #[test]
        fn losses_are_nonnegative(p in -10f32..10.0, n in -10f32..10.0) {
            prop_assert!(margin_ranking_loss(p, n, 1.0).0 >= 0.0);
            prop_assert!(logistic_loss(p, n).0 >= 0.0);
            prop_assert!(limit_based_loss(p, n, 1.0, 2.0, 0.5).0 >= 0.0);
        }

        #[test]
        fn gradient_signs_push_pos_down_neg_up(p in -5f32..5.0, n in -5f32..5.0) {
            let (_, dp, dn) = margin_ranking_loss(p, n, 1.0);
            prop_assert!(dp >= 0.0);
            prop_assert!(dn <= 0.0);
            let (_, dp, dn) = logistic_loss(p, n);
            prop_assert!(dp >= 0.0);
            prop_assert!(dn <= 0.0);
            let (_, dp, dn) = limit_based_loss(p, n, 1.0, 2.0, 0.5);
            prop_assert!(dp >= 0.0);
            prop_assert!(dn <= 0.0);
        }

        #[test]
        fn margin_gradients_match_finite_differences(p in -3f32..3.0, n in -3f32..3.0) {
            let eps = 1e-3;
            let (_, dp, _) = margin_ranking_loss(p, n, 1.0);
            let f = |p: f32| margin_ranking_loss(p, n, 1.0).0;
            let fd = (f(p + eps) - f(p - eps)) / (2.0 * eps);
            // Away from the hinge kink, gradients agree.
            prop_assume!((1.0 + p - n).abs() > 0.01);
            prop_assert!((dp - fd).abs() < 1e-2);
        }
    }
}
