//! # openea-math
//!
//! The numeric substrate of OpenEA-rs: dense vector/matrix kernels, embedding
//! tables with the initializers catalogued in the paper's Figure 4 (unit,
//! uniform, orthogonal, Xavier), the three loss families (marginal, logistic,
//! limit-based), the two negative-sampling schemes (uniform, truncated) and
//! sparse-update optimizers (SGD, AdaGrad, Adam).
//!
//! Everything here is framework-free `f32` code; the embedding models in
//! `openea-models` differentiate their energies by hand on top of these
//! kernels, and `openea-autodiff` provides a tape for the deep models.

pub mod embedding;
pub mod init;
pub mod kernel;
pub mod loss;
pub mod matrix;
pub mod negsamp;
pub mod optim;
pub mod procrustes;
pub mod vecops;

pub use embedding::EmbeddingTable;
pub use init::Initializer;
pub use loss::{limit_based_loss, logistic_loss, margin_ranking_loss};
pub use matrix::Matrix;
pub use negsamp::{NegSampler, TruncatedSampler, UniformSampler};
pub use optim::{AdaGrad, Adam, Optimizer, Sgd};
pub use procrustes::{nearest_orthogonal, procrustes};
