//! Sparse-update optimizers over embedding tables.
//!
//! Embedding training touches only a handful of rows per example, so each
//! optimizer applies updates row-by-row and keeps per-parameter state lazily.

use crate::embedding::EmbeddingTable;

/// A first-order optimizer applying a gradient to one row of a table.
pub trait Optimizer {
    /// Applies `grad` to row `row` of `table`.
    fn step_row(&mut self, table: &mut EmbeddingTable, row: usize, grad: &[f32]);

    /// Applies `grad` to a dense parameter buffer identified by `slot`
    /// (used for weight matrices; each distinct buffer needs its own slot).
    fn step_dense(&mut self, params: &mut [f32], slot: usize, grad: &[f32]);
}

/// Plain stochastic gradient descent.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step_row(&mut self, table: &mut EmbeddingTable, row: usize, grad: &[f32]) {
        table.sgd_row(row, grad, self.lr);
    }

    fn step_dense(&mut self, params: &mut [f32], _slot: usize, grad: &[f32]) {
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }
}

/// AdaGrad with lazily-allocated accumulators (the optimizer OpenEA uses for
/// most approaches).
#[derive(Clone, Debug)]
pub struct AdaGrad {
    pub lr: f32,
    pub eps: f32,
    /// Accumulated squared gradients per (table) row, keyed by row start.
    row_state: Vec<f32>,
    dense_state: Vec<Vec<f32>>,
}

impl AdaGrad {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            eps: 1e-8,
            row_state: Vec::new(),
            dense_state: Vec::new(),
        }
    }

    fn ensure_row_state(&mut self, len: usize) {
        if self.row_state.len() < len {
            self.row_state.resize(len, 0.0);
        }
    }

    fn ensure_dense_state(&mut self, slot: usize, len: usize) {
        while self.dense_state.len() <= slot {
            self.dense_state.push(Vec::new());
        }
        if self.dense_state[slot].len() < len {
            self.dense_state[slot].resize(len, 0.0);
        }
    }
}

impl Optimizer for AdaGrad {
    fn step_row(&mut self, table: &mut EmbeddingTable, row: usize, grad: &[f32]) {
        let dim = table.dim();
        let start = row * dim;
        self.ensure_row_state(table.count() * dim);
        let r = table.row_mut(row);
        for i in 0..dim {
            let g = grad[i];
            let s = &mut self.row_state[start + i];
            *s += g * g;
            r[i] -= self.lr * g / (s.sqrt() + self.eps);
        }
    }

    fn step_dense(&mut self, params: &mut [f32], slot: usize, grad: &[f32]) {
        self.ensure_dense_state(slot, params.len());
        let state = &mut self.dense_state[slot];
        for i in 0..params.len() {
            let g = grad[i];
            state[i] += g * g;
            params[i] -= self.lr * g / (state[i].sqrt() + self.eps);
        }
    }
}

/// Adam with lazily-allocated first/second-moment state.
///
/// Bias correction uses a per-slot step counter, which for sparse rows means
/// "number of updates to that row", the standard lazy-Adam behaviour.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    row_m: Vec<f32>,
    row_v: Vec<f32>,
    row_t: Vec<u32>,
    dense: Vec<(Vec<f32>, Vec<f32>, u32)>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            row_m: Vec::new(),
            row_v: Vec::new(),
            row_t: Vec::new(),
            dense: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply(
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: u32,
        m: &mut [f32],
        v: &mut [f32],
        params: &mut [f32],
        grad: &[f32],
    ) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

impl Optimizer for Adam {
    fn step_row(&mut self, table: &mut EmbeddingTable, row: usize, grad: &[f32]) {
        let dim = table.dim();
        let total = table.count() * dim;
        if self.row_m.len() < total {
            self.row_m.resize(total, 0.0);
            self.row_v.resize(total, 0.0);
            self.row_t.resize(table.count(), 0);
        }
        self.row_t[row] += 1;
        let t = self.row_t[row];
        let start = row * dim;
        Self::apply(
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            t,
            &mut self.row_m[start..start + dim],
            &mut self.row_v[start..start + dim],
            table.row_mut(row),
            grad,
        );
    }

    fn step_dense(&mut self, params: &mut [f32], slot: usize, grad: &[f32]) {
        while self.dense.len() <= slot {
            self.dense.push((Vec::new(), Vec::new(), 0));
        }
        let (m, v, t) = &mut self.dense[slot];
        if m.len() < params.len() {
            m.resize(params.len(), 0.0);
            v.resize(params.len(), 0.0);
        }
        *t += 1;
        Self::apply(
            self.lr, self.beta1, self.beta2, self.eps, *t, m, v, params, grad,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    /// Minimize f(x) = ||x - target||^2 with each optimizer; all should make
    /// steady progress on this convex bowl.
    fn run<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut table = EmbeddingTable::new(1, 4, Initializer::Uniform { scale: 1.0 }, &mut rng);
        let target = [0.5, -0.25, 0.75, 0.0];
        for _ in 0..steps {
            let grad: Vec<f32> = table
                .row(0)
                .iter()
                .zip(&target)
                .map(|(x, t)| 2.0 * (x - t))
                .collect();
            opt.step_row(&mut table, 0, &grad);
        }
        table
            .row(0)
            .iter()
            .zip(&target)
            .map(|(x, t)| (x - t) * (x - t))
            .sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(Sgd { lr: 0.1 }, 200) < 1e-6);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        assert!(run(AdaGrad::new(0.5), 500) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(Adam::new(0.05), 500) < 1e-4);
    }

    #[test]
    fn dense_steps_update_independent_slots() {
        let mut opt = AdaGrad::new(0.1);
        let mut p0 = vec![1.0f32, 1.0];
        let mut p1 = vec![1.0f32, 1.0];
        opt.step_dense(&mut p0, 0, &[1.0, 0.0]);
        opt.step_dense(&mut p1, 1, &[0.0, 1.0]);
        assert!(p0[0] < 1.0 && p0[1] == 1.0);
        assert!(p1[1] < 1.0 && p1[0] == 1.0);
    }

    #[test]
    fn sparse_rows_have_independent_adam_timesteps() {
        let mut opt = Adam::new(0.1);
        let mut table = EmbeddingTable::zeros(2, 2);
        // Row 0 updated twice, row 1 once; all with the same gradient.
        opt.step_row(&mut table, 0, &[1.0, 1.0]);
        opt.step_row(&mut table, 0, &[1.0, 1.0]);
        opt.step_row(&mut table, 1, &[1.0, 1.0]);
        // First Adam step is ~lr regardless of row; row 0 advanced further.
        assert!(table.row(0)[0] < table.row(1)[0]);
    }
}
