//! Negative sampling for triple-based training (paper Sect. 2.2.1):
//! uniform corruption and BootEA's truncated ε-sampling, which restricts
//! corruptions to the σ nearest neighbours of the replaced entity so that
//! negatives stay hard.

use openea_runtime::rng::Rng;

/// A raw relation triple over dense `u32` ids (head, relation, tail).
pub type RawTriple = (u32, u32, u32);

/// Strategy for corrupting a positive triple into a negative one.
pub trait NegSampler {
    /// Produces a corrupted triple by replacing the head or the tail.
    fn corrupt<R: Rng>(&self, triple: RawTriple, rng: &mut R) -> RawTriple;
}

/// Uniform corruption: replace head or tail (50/50) by a uniformly random
/// entity.
#[derive(Clone, Copy, Debug)]
pub struct UniformSampler {
    pub num_entities: u32,
}

impl NegSampler for UniformSampler {
    fn corrupt<R: Rng>(&self, (h, r, t): RawTriple, rng: &mut R) -> RawTriple {
        debug_assert!(self.num_entities > 0);
        let e = rng.gen_range(0..self.num_entities);
        if rng.gen_bool(0.5) {
            (e, r, t)
        } else {
            (h, r, e)
        }
    }
}

/// Draws one corruption per positive into `out`, in iteration order, all
/// from the same generator. The batched trainer uses this to materialise a
/// mini-batch's negatives from its dedicated RNG stream before fanning the
/// gradient work out to threads: the draw order (and hence the result) is a
/// pure function of `(positives, rng state)`, never of the thread count.
pub fn draw_negatives<S, R, I>(sampler: &S, positives: I, rng: &mut R, out: &mut Vec<RawTriple>)
where
    S: NegSampler + ?Sized,
    R: Rng,
    I: IntoIterator<Item = RawTriple>,
{
    for pos in positives {
        out.push(sampler.corrupt(pos, rng));
    }
}

/// Truncated ε-sampling: each entity has a precomputed candidate list (its
/// nearest neighbours in the current embedding space); corruptions are drawn
/// from that list. Falls back to uniform when a list is empty.
#[derive(Clone, Debug)]
pub struct TruncatedSampler {
    /// `candidates[e]` = hard negative candidates for entity `e`.
    candidates: Vec<Vec<u32>>,
    num_entities: u32,
}

impl TruncatedSampler {
    /// Builds the sampler from per-entity candidate lists. `candidates.len()`
    /// must equal the entity count.
    pub fn new(candidates: Vec<Vec<u32>>) -> Self {
        let num_entities = u32::try_from(candidates.len()).expect("entity count overflows u32");
        Self {
            candidates,
            num_entities,
        }
    }

    /// The truncation size used by BootEA: `⌈(1 − ε) · n⌉` candidates out of
    /// `n` entities, with ε typically 0.9 (keep the hardest 10%).
    pub fn truncation_size(num_entities: usize, epsilon: f64) -> usize {
        // Subtract a tiny epsilon before ceiling so that exact products
        // (e.g. 0.02 × 100) are not pushed up by float error.
        ((((1.0 - epsilon) * num_entities as f64) - 1e-9).ceil() as usize)
            .clamp(1, num_entities.max(1))
    }

    fn draw<R: Rng>(&self, e: u32, rng: &mut R) -> u32 {
        let list = &self.candidates[e as usize];
        if list.is_empty() {
            rng.gen_range(0..self.num_entities)
        } else {
            list[rng.gen_range(0..list.len())]
        }
    }
}

impl NegSampler for TruncatedSampler {
    fn corrupt<R: Rng>(&self, (h, r, t): RawTriple, rng: &mut R) -> RawTriple {
        if rng.gen_bool(0.5) {
            (self.draw(h, rng), r, t)
        } else {
            (h, r, self.draw(t, rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    #[test]
    fn uniform_changes_exactly_one_side() {
        let s = UniformSampler { num_entities: 100 };
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..200 {
            let (h, r, t) = s.corrupt((5, 1, 9), &mut rng);
            assert_eq!(r, 1);
            assert!(h == 5 || t == 9, "only one side may change");
            assert!(h < 100 && t < 100);
        }
    }

    #[test]
    fn uniform_eventually_corrupts_both_sides() {
        let s = UniformSampler { num_entities: 50 };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut head_changed = false;
        let mut tail_changed = false;
        for _ in 0..500 {
            let (h, _, t) = s.corrupt((5, 1, 9), &mut rng);
            head_changed |= h != 5;
            tail_changed |= t != 9;
        }
        assert!(head_changed && tail_changed);
    }

    #[test]
    fn truncated_draws_from_candidates() {
        let candidates = vec![vec![7, 8], vec![], vec![0]];
        let s = TruncatedSampler::new(candidates);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let (h, _, t) = s.corrupt((0, 3, 2), &mut rng);
            if h != 0 {
                assert!(h == 7 || h == 8);
            }
            if t != 2 {
                assert_eq!(t, 0);
            }
        }
    }

    #[test]
    fn truncated_falls_back_to_uniform_on_empty_list() {
        let s = TruncatedSampler::new(vec![vec![], vec![], vec![]]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let (h, _, t) = s.corrupt((1, 0, 1), &mut rng);
            assert!(h < 3 && t < 3);
        }
    }

    #[test]
    fn draw_negatives_matches_sequential_corrupt_calls() {
        let s = UniformSampler { num_entities: 40 };
        let positives: Vec<RawTriple> = (0..17).map(|i| (i, i % 3, (i + 1) % 17)).collect();
        let mut batch = Vec::new();
        draw_negatives(
            &s,
            positives.iter().copied(),
            &mut SmallRng::seed_from_u64(4),
            &mut batch,
        );
        let mut rng = SmallRng::seed_from_u64(4);
        let one_by_one: Vec<RawTriple> =
            positives.iter().map(|&p| s.corrupt(p, &mut rng)).collect();
        assert_eq!(batch, one_by_one);
    }

    #[test]
    fn truncation_size_formula() {
        assert_eq!(TruncatedSampler::truncation_size(100, 0.9), 10);
        assert_eq!(TruncatedSampler::truncation_size(100, 0.98), 2);
        assert_eq!(TruncatedSampler::truncation_size(3, 0.999), 1);
        assert_eq!(TruncatedSampler::truncation_size(0, 0.9), 1);
    }
}
