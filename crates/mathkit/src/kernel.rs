//! Register-blocked SIMD microkernels with runtime ISA dispatch.
//!
//! This module owns the innermost loops under the dimension-major
//! ("transposed-tile") block kernels in [`crate::vecops`]: one or four
//! source rows swept against a tile stored `tile_t[d * cols + j]`, with the
//! embedding dimension `d` as the outer loop. Each output column keeps its
//! own accumulator that folds **sequentially in `d`** — the same op
//! sequence at every vector width — so the scalar, SSE2 and AVX2 backends
//! are *bit-identical* to each other and to the naive per-pair kernels
//! (`dot`, `euclidean`, `manhattan`). Vectorizing across columns instead of
//! across `d` is what makes that possible: no horizontal reduction, no
//! reassociation, no FMA (fused rounding would differ from `mul` + `add`).
//!
//! Float-order contract per accumulation op:
//! - inner product: seeds from `-0.0` (the IEEE additive identity
//!   `f32::sum` folds from), `acc + x*b` per step;
//! - squared Euclidean: seeds from `+0.0`, `acc + (x-b)*(x-b)` per step;
//! - Manhattan: seeds from `+0.0`, `acc + |x-b|` per step, where `|v|` is a
//!   sign-bit clear (`f32::abs`) on every backend.
//!
//! Register geometry: single-row kernels block four vectors of columns per
//! `d`-pass (32 f32 lanes at AVX2); the [`PANEL_ROWS`]-row panel kernels
//! block 4 rows × 2 vectors = 8 wide-register accumulators, so each tile
//! lane load is amortized over four source rows. Remainders fall through to
//! narrower vector loops and finally a scalar tail with the identical fold.
//!
//! Dispatch: the backend is detected once (AVX2 via
//! `is_x86_feature_detected!`, else SSE2 which is baseline on `x86_64`,
//! else scalar) and cached in an atomic. The `OPENEA_KERNEL_BACKEND` env
//! var (`scalar` | `sse2` | `avx2`, clamped to what the host supports)
//! overrides detection, and [`force_backend`] re-points the dispatch at
//! runtime — that is how CI exercises every backend on any host. Because
//! all backends are bit-identical, concurrent readers racing a
//! `force_backend` call still compute the same numbers.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    __m128, __m256, _mm256_add_ps, _mm256_andnot_ps, _mm256_loadu_ps, _mm256_mul_ps,
    _mm256_set1_ps, _mm256_storeu_ps, _mm256_sub_ps, _mm_add_ps, _mm_andnot_ps, _mm_loadu_ps,
    _mm_mul_ps, _mm_set1_ps, _mm_storeu_ps, _mm_sub_ps,
};
use std::sync::atomic::{AtomicU8, Ordering};

/// Source rows per register panel (see [`panel_dot`] and friends).
pub const PANEL_ROWS: usize = 4;

/// Environment variable that pins the kernel backend for a whole process
/// (`scalar` | `sse2` | `avx2`); requests above what the host supports are
/// clamped down, unknown values fall back to auto-detection.
pub const BACKEND_ENV: &str = "OPENEA_KERNEL_BACKEND";

/// A kernel instruction-set backend, ordered weakest → strongest so that
/// "clamp to the best supported" is a plain `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Backend {
    /// Portable scalar loops — the reference every other backend must match
    /// bit-for-bit, and the only backend off `x86_64`.
    Scalar = 1,
    /// 128-bit SSE2 lanes (baseline on `x86_64`, no detection needed).
    Sse2 = 2,
    /// 256-bit AVX2 lanes (runtime-detected).
    Avx2 = 3,
}

impl Backend {
    /// Every backend the dispatcher knows about, weakest first.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

    /// Stable label, also the accepted [`BACKEND_ENV`] value.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a [`label`](Self::label) (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Backend {
        match v {
            1 => Backend::Scalar,
            2 => Backend::Sse2,
            3 => Backend::Avx2,
            _ => unreachable!("invalid backend tag {v}"),
        }
    }
}

/// Cached dispatch decision; 0 = not yet resolved.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The strongest backend this host can execute.
pub fn best_supported() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Backend::Avx2
        } else {
            Backend::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Backend::Scalar
    }
}

/// Clamps a requested backend to what this host can execute, so forcing
/// `avx2` on an SSE2-only box degrades gracefully instead of faulting.
pub fn clamp_to_supported(b: Backend) -> Backend {
    b.min(best_supported())
}

/// Backends this host can actually execute (always includes `Scalar`).
pub fn supported_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|&b| clamp_to_supported(b) == b)
        .collect()
}

fn resolve_auto() -> Backend {
    match std::env::var(BACKEND_ENV) {
        Ok(s) => match Backend::parse(&s) {
            Some(b) => clamp_to_supported(b),
            None => best_supported(),
        },
        Err(_) => best_supported(),
    }
}

/// The backend every block kernel currently dispatches to. Resolved on
/// first use from [`BACKEND_ENV`] / CPU detection and cached.
pub fn active_backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let b = resolve_auto();
            ACTIVE.store(b as u8, Ordering::Relaxed);
            b
        }
        v => Backend::from_u8(v),
    }
}

/// Re-points the dispatcher: `Some(b)` selects `b` (clamped to the host's
/// capabilities), `None` restores [`BACKEND_ENV`] / auto-detection. Returns
/// the backend that actually took effect. Safe to race with concurrent
/// kernel calls — every backend computes identical bits.
pub fn force_backend(b: Option<Backend>) -> Backend {
    let eff = match b {
        Some(b) => clamp_to_supported(b),
        None => resolve_auto(),
    };
    ACTIVE.store(eff as u8, Ordering::Relaxed);
    eff
}

// --------------------------------------------------------------- SIMD lanes

/// A vector of `N` f32 lanes. All ops are lane-wise; `abs` clears the sign
/// bit exactly like `f32::abs`. Methods are `unsafe` because the wide impls
/// lower to ISA intrinsics: callers must only reach them through a frame
/// whose target features match (the `#[target_feature]` wrappers below).
trait Lanes: Copy {
    const N: usize;
    unsafe fn load(p: *const f32) -> Self;
    unsafe fn store(self, p: *mut f32);
    unsafe fn splat(x: f32) -> Self;
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn sub(self, o: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    unsafe fn abs(self) -> Self;
}

impl Lanes for f32 {
    const N: usize = 1;
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self {
        *p
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f32) {
        *p = self;
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        x
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    unsafe fn abs(self) -> Self {
        self.abs()
    }
}

#[cfg(target_arch = "x86_64")]
impl Lanes for __m128 {
    const N: usize = 4;
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self {
        _mm_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f32) {
        _mm_storeu_ps(p, self)
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        _mm_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        _mm_add_ps(self, o)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        _mm_sub_ps(self, o)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        _mm_mul_ps(self, o)
    }
    #[inline(always)]
    unsafe fn abs(self) -> Self {
        // Sign-bit clear: bit-identical to `f32::abs` per lane.
        _mm_andnot_ps(_mm_set1_ps(-0.0), self)
    }
}

#[cfg(target_arch = "x86_64")]
impl Lanes for __m256 {
    const N: usize = 8;
    #[inline(always)]
    unsafe fn load(p: *const f32) -> Self {
        _mm256_loadu_ps(p)
    }
    #[inline(always)]
    unsafe fn store(self, p: *mut f32) {
        _mm256_storeu_ps(p, self)
    }
    #[inline(always)]
    unsafe fn splat(x: f32) -> Self {
        _mm256_set1_ps(x)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        _mm256_add_ps(self, o)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        _mm256_sub_ps(self, o)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        _mm256_mul_ps(self, o)
    }
    #[inline(always)]
    unsafe fn abs(self) -> Self {
        _mm256_andnot_ps(_mm256_set1_ps(-0.0), self)
    }
}

// -------------------------------------------------------- accumulation ops

/// One fold step of a column accumulator. `SEED` is the additive identity
/// the chain starts from (part of the float-order contract above).
trait Accum {
    const SEED: f32;
    unsafe fn step<V: Lanes>(acc: V, x: V, b: V) -> V;
}

/// `acc + x*b`, seeded from `-0.0` like `f32::sum`.
struct DotA;
impl Accum for DotA {
    const SEED: f32 = -0.0;
    #[inline(always)]
    unsafe fn step<V: Lanes>(acc: V, x: V, b: V) -> V {
        acc.add(x.mul(b))
    }
}

/// `acc + (x-b)*(x-b)`, seeded from `+0.0`.
struct SqA;
impl Accum for SqA {
    const SEED: f32 = 0.0;
    #[inline(always)]
    unsafe fn step<V: Lanes>(acc: V, x: V, b: V) -> V {
        let t = x.sub(b);
        acc.add(t.mul(t))
    }
}

/// `acc + |x-b|`, seeded from `+0.0`.
struct AbsA;
impl Accum for AbsA {
    const SEED: f32 = 0.0;
    #[inline(always)]
    unsafe fn step<V: Lanes>(acc: V, x: V, b: V) -> V {
        acc.add(x.sub(b).abs())
    }
}

// --------------------------------------------------------- generic kernels

/// One source row against columns `[start, cols)` of a dimension-major
/// tile: a four-vector register block, then one vector at a time, then a
/// scalar tail — every column folds the identical op sequence in `d`.
///
/// Safety: `tile_t` must hold `a.len() * cols` f32s, `out` must be writable
/// for `cols`, and `V`'s ISA must be live in the calling frame.
#[inline(always)]
unsafe fn row_kernel<V: Lanes, A: Accum>(
    a: &[f32],
    tile_t: *const f32,
    cols: usize,
    start: usize,
    out: *mut f32,
) {
    let mut j = start;
    while j + 4 * V::N <= cols {
        let seed = V::splat(A::SEED);
        let (mut c0, mut c1, mut c2, mut c3) = (seed, seed, seed, seed);
        for (d, &x) in a.iter().enumerate() {
            let base = tile_t.add(d * cols + j);
            let xv = V::splat(x);
            c0 = A::step(c0, xv, V::load(base));
            c1 = A::step(c1, xv, V::load(base.add(V::N)));
            c2 = A::step(c2, xv, V::load(base.add(2 * V::N)));
            c3 = A::step(c3, xv, V::load(base.add(3 * V::N)));
        }
        c0.store(out.add(j));
        c1.store(out.add(j + V::N));
        c2.store(out.add(j + 2 * V::N));
        c3.store(out.add(j + 3 * V::N));
        j += 4 * V::N;
    }
    while j + V::N <= cols {
        let mut c = V::splat(A::SEED);
        for (d, &x) in a.iter().enumerate() {
            c = A::step(c, V::splat(x), V::load(tile_t.add(d * cols + j)));
        }
        c.store(out.add(j));
        j += V::N;
    }
    while j < cols {
        let mut c = A::SEED;
        for (d, &x) in a.iter().enumerate() {
            c = A::step(c, x, *tile_t.add(d * cols + j));
        }
        *out.add(j) = c;
        j += 1;
    }
}

/// Four source rows against a dimension-major tile: 4 rows × 2 vectors = 8
/// register accumulators, each tile lane load amortized over the four rows.
/// Column remainders fall through to [`row_kernel`] per row (same fold, so
/// still bit-identical).
///
/// Safety: `a` must hold `PANEL_ROWS * dim` f32s, `tile_t` must hold
/// `dim * cols`, each `out` pointer must be writable for `cols`, and `V`'s
/// ISA must be live in the calling frame.
#[inline(always)]
unsafe fn panel_kernel<V: Lanes, A: Accum>(
    a: *const f32,
    dim: usize,
    tile_t: *const f32,
    cols: usize,
    out: [*mut f32; PANEL_ROWS],
) {
    let (a0, a1, a2, a3) = (a, a.add(dim), a.add(2 * dim), a.add(3 * dim));
    let mut j = 0;
    while j + 2 * V::N <= cols {
        let seed = V::splat(A::SEED);
        let (mut c00, mut c01) = (seed, seed);
        let (mut c10, mut c11) = (seed, seed);
        let (mut c20, mut c21) = (seed, seed);
        let (mut c30, mut c31) = (seed, seed);
        for d in 0..dim {
            let base = tile_t.add(d * cols + j);
            let b0 = V::load(base);
            let b1 = V::load(base.add(V::N));
            let x0 = V::splat(*a0.add(d));
            c00 = A::step(c00, x0, b0);
            c01 = A::step(c01, x0, b1);
            let x1 = V::splat(*a1.add(d));
            c10 = A::step(c10, x1, b0);
            c11 = A::step(c11, x1, b1);
            let x2 = V::splat(*a2.add(d));
            c20 = A::step(c20, x2, b0);
            c21 = A::step(c21, x2, b1);
            let x3 = V::splat(*a3.add(d));
            c30 = A::step(c30, x3, b0);
            c31 = A::step(c31, x3, b1);
        }
        c00.store(out[0].add(j));
        c01.store(out[0].add(j + V::N));
        c10.store(out[1].add(j));
        c11.store(out[1].add(j + V::N));
        c20.store(out[2].add(j));
        c21.store(out[2].add(j + V::N));
        c30.store(out[3].add(j));
        c31.store(out[3].add(j + V::N));
        j += 2 * V::N;
    }
    if j < cols {
        for (r, &o) in out.iter().enumerate() {
            let row = std::slice::from_raw_parts(a.add(r * dim), dim);
            row_kernel::<V, A>(row, tile_t, cols, j, o);
        }
    }
}

// ------------------------------------------------------ dispatch wrappers

macro_rules! dispatch_kernels {
    (
        $acc:ty,
        $row:ident, $row_sse2:ident, $row_avx2:ident, $row_doc:literal,
        $panel:ident, $panel_sse2:ident, $panel_avx2:ident, $panel_doc:literal
    ) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn $row_sse2(a: &[f32], tile_t: *const f32, cols: usize, out: *mut f32) {
            row_kernel::<__m128, $acc>(a, tile_t, cols, 0, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $row_avx2(a: &[f32], tile_t: *const f32, cols: usize, out: *mut f32) {
            row_kernel::<__m256, $acc>(a, tile_t, cols, 0, out)
        }

        #[doc = $row_doc]
        pub fn $row(a: &[f32], tile_t: &[f32], out: &mut [f32]) {
            let cols = out.len();
            assert_eq!(tile_t.len(), a.len() * cols, "tile_t shape");
            let (t, o) = (tile_t.as_ptr(), out.as_mut_ptr());
            match active_backend() {
                // Safety: bounds asserted above; wide wrappers only run
                // after their ISA was detected (or clamped) at dispatch.
                Backend::Scalar => unsafe { row_kernel::<f32, $acc>(a, t, cols, 0, o) },
                #[cfg(target_arch = "x86_64")]
                Backend::Sse2 => unsafe { $row_sse2(a, t, cols, o) },
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => unsafe { $row_avx2(a, t, cols, o) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unsafe { row_kernel::<f32, $acc>(a, t, cols, 0, o) },
            }
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "sse2")]
        unsafe fn $panel_sse2(
            a: *const f32,
            dim: usize,
            tile_t: *const f32,
            cols: usize,
            out: [*mut f32; PANEL_ROWS],
        ) {
            panel_kernel::<__m128, $acc>(a, dim, tile_t, cols, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $panel_avx2(
            a: *const f32,
            dim: usize,
            tile_t: *const f32,
            cols: usize,
            out: [*mut f32; PANEL_ROWS],
        ) {
            panel_kernel::<__m256, $acc>(a, dim, tile_t, cols, out)
        }

        #[doc = $panel_doc]
        pub fn $panel(a: &[f32], dim: usize, tile_t: &[f32], out: [&mut [f32]; PANEL_ROWS]) {
            assert_eq!(a.len(), PANEL_ROWS * dim, "panel source shape");
            let cols = out[0].len();
            assert!(out.iter().all(|o| o.len() == cols), "ragged panel out");
            assert_eq!(tile_t.len(), dim * cols, "tile_t shape");
            let [o0, o1, o2, o3] = out;
            let o = [
                o0.as_mut_ptr(),
                o1.as_mut_ptr(),
                o2.as_mut_ptr(),
                o3.as_mut_ptr(),
            ];
            let (ap, t) = (a.as_ptr(), tile_t.as_ptr());
            match active_backend() {
                // Safety: as in the row dispatcher above.
                Backend::Scalar => unsafe { panel_kernel::<f32, $acc>(ap, dim, t, cols, o) },
                #[cfg(target_arch = "x86_64")]
                Backend::Sse2 => unsafe { $panel_sse2(ap, dim, t, cols, o) },
                #[cfg(target_arch = "x86_64")]
                Backend::Avx2 => unsafe { $panel_avx2(ap, dim, t, cols, o) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unsafe { panel_kernel::<f32, $acc>(ap, dim, t, cols, o) },
            }
        }
    };
}

dispatch_kernels!(
    DotA,
    row_dot,
    row_dot_sse2,
    row_dot_avx2,
    "`out[j] = Σ_d a[d] * tile_t[d*cols + j]`, folded sequentially in `d` \
     from `-0.0` — bit-identical to `vecops::dot` per column.",
    panel_dot,
    panel_dot_sse2,
    panel_dot_avx2,
    "Four-row inner-product panel over one dimension-major tile; \
     `out[r][j]` is bit-identical to [`row_dot`] of row `r`."
);

dispatch_kernels!(
    SqA,
    row_sqdist,
    row_sqdist_sse2,
    row_sqdist_avx2,
    "`out[j] = Σ_d (a[d] - tile_t[d*cols + j])²`, folded sequentially in \
     `d` from `+0.0` — bit-identical to `vecops::euclidean_sq` per column.",
    panel_sqdist,
    panel_sqdist_sse2,
    panel_sqdist_avx2,
    "Four-row squared-Euclidean panel over one dimension-major tile; \
     `out[r][j]` is bit-identical to [`row_sqdist`] of row `r`."
);

dispatch_kernels!(
    AbsA,
    row_absdist,
    row_absdist_sse2,
    row_absdist_avx2,
    "`out[j] = Σ_d |a[d] - tile_t[d*cols + j]|`, folded sequentially in \
     `d` from `+0.0` — bit-identical to `vecops::manhattan` per column.",
    panel_absdist,
    panel_absdist_sse2,
    panel_absdist_avx2,
    "Four-row Manhattan panel over one dimension-major tile; `out[r][j]` \
     is bit-identical to [`row_absdist`] of row `r`."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, salt: u32) -> Vec<f32> {
        // Deterministic mixed-magnitude data including exact zeros and
        // negatives; no RNG dependency needed at this layer.
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((x % 2001) as f32 - 1000.0) / 250.0
            })
            .collect()
    }

    fn transpose(tile: &[f32], dim: usize) -> Vec<f32> {
        let rows = tile.len() / dim;
        let mut out = vec![0.0; tile.len()];
        for (j, row) in tile.chunks_exact(dim).enumerate() {
            for (d, &v) in row.iter().enumerate() {
                out[d * rows + j] = v;
            }
        }
        out
    }

    fn scalar_ref(a: &[f32], tile: &[f32], dim: usize, op: &str) -> Vec<f32> {
        tile.chunks_exact(dim)
            .map(|b| match op {
                "dot" => a.iter().zip(b).map(|(x, y)| x * y).sum(),
                "sq" => a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum(),
                "abs" => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn labels_parse_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Some(b));
            assert_eq!(Backend::parse(&b.label().to_uppercase()), Some(b));
        }
        assert_eq!(Backend::parse("neon"), None);
        assert!(supported_backends().contains(&Backend::Scalar));
    }

    #[test]
    fn forcing_clamps_to_host_support() {
        // Single test owns force_backend assertions (the knob is global);
        // other tests only *compute*, which is backend-invariant.
        let prev = active_backend();
        for b in Backend::ALL {
            let eff = force_backend(Some(b));
            assert_eq!(eff, clamp_to_supported(b));
            assert!(supported_backends().contains(&eff));
        }
        force_backend(None);
        assert_eq!(active_backend(), prev);
    }

    #[test]
    fn every_backend_matches_the_scalar_fold_bitwise() {
        // Shapes chosen to hit the 4-vector block, the 1-vector loop and
        // the scalar tail on every backend (cols 67 = 2*32 + 3 at AVX2).
        for &(rows, dim) in &[(1usize, 1usize), (5, 3), (67, 16), (97, 7)] {
            let tile = pseudo(rows * dim, 7);
            let tile_t = transpose(&tile, dim);
            let a = pseudo(PANEL_ROWS * dim, 1312);
            for op in ["dot", "sq", "abs"] {
                let run_row = |x: &[f32], out: &mut [f32]| match op {
                    "dot" => row_dot(x, &tile_t, out),
                    "sq" => row_sqdist(x, &tile_t, out),
                    "abs" => row_absdist(x, &tile_t, out),
                    _ => unreachable!(),
                };
                let want = scalar_ref(&a[..dim], &tile, dim, op);
                for b in supported_backends() {
                    force_backend(Some(b));
                    let mut got = vec![9.0f32; rows];
                    run_row(&a[..dim], &mut got);
                    for j in 0..rows {
                        assert_eq!(
                            got[j].to_bits(),
                            want[j].to_bits(),
                            "{op} row kernel, backend {}, col {j}",
                            b.label()
                        );
                    }
                    // Panel result must equal the row kernel per row.
                    let mut p = vec![9.0f32; PANEL_ROWS * rows];
                    let (p0, rest) = p.split_at_mut(rows);
                    let (p1, rest) = rest.split_at_mut(rows);
                    let (p2, p3) = rest.split_at_mut(rows);
                    match op {
                        "dot" => panel_dot(&a, dim, &tile_t, [p0, p1, p2, p3]),
                        "sq" => panel_sqdist(&a, dim, &tile_t, [p0, p1, p2, p3]),
                        "abs" => panel_absdist(&a, dim, &tile_t, [p0, p1, p2, p3]),
                        _ => unreachable!(),
                    }
                    for r in 0..PANEL_ROWS {
                        let want_r = scalar_ref(&a[r * dim..(r + 1) * dim], &tile, dim, op);
                        for j in 0..rows {
                            assert_eq!(
                                p[r * rows + j].to_bits(),
                                want_r[j].to_bits(),
                                "{op} panel kernel, backend {}, row {r} col {j}",
                                b.label()
                            );
                        }
                    }
                }
                force_backend(None);
            }
        }
    }

    #[test]
    fn dot_seeds_from_negative_zero_on_every_backend() {
        // dot(-1, 0) = -0.0 exactly like `f32::sum`; distances seed +0.0.
        let a = [-1.0f32];
        let tile_t = [0.0f32; 9];
        for b in supported_backends() {
            force_backend(Some(b));
            let mut out = [9.0f32; 9];
            row_dot(&a, &tile_t, &mut out);
            for (j, o) in out.iter().enumerate() {
                assert_eq!(o.to_bits(), (-0.0f32).to_bits(), "{} col {j}", b.label());
            }
            row_sqdist(&a, &tile_t, &mut out);
            assert_eq!(out[0].to_bits(), 1.0f32.to_bits());
        }
        force_backend(None);
    }

    #[test]
    fn empty_dim_writes_the_seed() {
        let mut out = [5.0f32; 3];
        row_dot(&[], &[], &mut out);
        assert!(out.iter().all(|o| o.to_bits() == (-0.0f32).to_bits()));
        row_absdist(&[], &[], &mut out);
        assert!(out.iter().all(|o| o.to_bits() == 0.0f32.to_bits()));
    }
}
