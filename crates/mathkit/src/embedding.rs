//! An embedding table: one dense `f32` vector per symbol, with row views and
//! the normalization/update helpers used by every embedding model.
//!
//! ```
//! use openea_math::{EmbeddingTable, Initializer};
//! use openea_runtime::rng::SmallRng;
//! use openea_runtime::rng::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut table = EmbeddingTable::new(10, 4, Initializer::Unit, &mut rng);
//! assert_eq!(table.count(), 10);
//! table.sgd_row(3, &[0.1, 0.0, 0.0, 0.0], 0.5);
//! table.clip_rows_to_unit_ball();
//! ```

use crate::init::Initializer;
use crate::vecops;
use openea_runtime::rng::Rng;

/// `count × dim` embedding parameters, row-major.
#[derive(Clone, Debug)]
pub struct EmbeddingTable {
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates and initializes a table for `count` symbols.
    pub fn new<R: Rng>(count: usize, dim: usize, init: Initializer, rng: &mut R) -> Self {
        let mut data = vec![0.0; count * dim];
        init.fill(&mut data, count, dim, rng);
        Self { dim, data }
    }

    /// Creates an all-zero table (e.g. gradient accumulators).
    pub fn zeros(count: usize, dim: usize) -> Self {
        Self {
            dim,
            data: vec![0.0; count * dim],
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn count(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Two distinct mutable rows at once (for pairwise updates).
    ///
    /// # Panics
    /// Panics if `i == j`.
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(i, j, "rows must be distinct");
        let d = self.dim;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * d);
            (&mut a[i * d..(i + 1) * d], &mut b[..d])
        } else {
            let (a, b) = self.data.split_at_mut(i * d);
            let (x, y) = (&mut b[..d], &mut a[j * d..(j + 1) * d]);
            (x, y)
        }
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// L2-normalizes every row (the "constrain entity norms to 1" trick the
    /// paper applies to many approaches).
    pub fn normalize_rows(&mut self) {
        let d = self.dim;
        for r in self.data.chunks_mut(d) {
            vecops::normalize(r);
        }
    }

    /// Rescales rows whose norm exceeds 1 back onto the unit ball
    /// (soft constraint used by TransE-style models).
    pub fn clip_rows_to_unit_ball(&mut self) {
        let d = self.dim;
        for r in self.data.chunks_mut(d) {
            let n = vecops::norm2(r);
            if n > 1.0 {
                vecops::scale(r, 1.0 / n);
            }
        }
    }

    /// Plain SGD step on one row: `row -= lr * grad`.
    #[inline]
    pub fn sgd_row(&mut self, i: usize, grad: &[f32], lr: f32) {
        vecops::axpy(-lr, grad, self.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    fn table() -> EmbeddingTable {
        let mut rng = SmallRng::seed_from_u64(0);
        EmbeddingTable::new(5, 4, Initializer::Uniform { scale: 1.0 }, &mut rng)
    }

    #[test]
    fn shape_accessors() {
        let t = table();
        assert_eq!(t.dim(), 4);
        assert_eq!(t.count(), 5);
        assert_eq!(t.row(2).len(), 4);
    }

    #[test]
    fn rows_mut2_gives_disjoint_views() {
        let mut t = table();
        let before0: Vec<f32> = t.row(0).to_vec();
        {
            let (a, b) = t.rows_mut2(3, 0);
            a.fill(1.0);
            b.fill(2.0);
        }
        assert!(t.row(3).iter().all(|&x| x == 1.0));
        assert!(t.row(0).iter().all(|&x| x == 2.0));
        assert_ne!(t.row(0), &before0[..]);
        // Order of the indices must not matter for which slice maps to which.
        let (x, _y) = t.rows_mut2(1, 4);
        x.fill(7.0);
        assert!(t.row(1).iter().all(|&x| x == 7.0));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rows_mut2_same_index_panics() {
        let mut t = table();
        let _ = t.rows_mut2(2, 2);
    }

    #[test]
    fn normalize_rows_gives_unit_norm() {
        let mut t = table();
        t.normalize_rows();
        for i in 0..t.count() {
            assert!((vecops::norm2(t.row(i)) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn clip_only_affects_long_rows() {
        let mut t = EmbeddingTable::zeros(2, 2);
        t.row_mut(0).copy_from_slice(&[3.0, 4.0]); // norm 5
        t.row_mut(1).copy_from_slice(&[0.3, 0.4]); // norm 0.5
        t.clip_rows_to_unit_ball();
        assert!((vecops::norm2(t.row(0)) - 1.0).abs() < 1e-5);
        assert_eq!(t.row(1), &[0.3, 0.4]);
    }

    #[test]
    fn sgd_row_moves_against_gradient() {
        let mut t = EmbeddingTable::zeros(1, 2);
        t.sgd_row(0, &[1.0, -2.0], 0.1);
        assert_eq!(t.row(0), &[-0.1, 0.2]);
    }
}
