//! The two baseline samplers of Sect. 3.3: random alignment sampling (RAS)
//! and PageRank-based sampling (PRS). Both are expected to produce worse
//! samples than IDS (sparser, higher JS divergence, many isolated entities);
//! the quality comparison is Table 3.

use openea_core::{EntityId, KgPair};
use openea_graph::{pagerank, PageRankConfig};
use openea_runtime::rng::Rng;
use openea_runtime::rng::SliceRandom;
use std::collections::HashSet;

/// Random alignment sampling: pick `target` alignment pairs uniformly at
/// random, keep those entities, and retain only triples whose endpoints both
/// survive.
pub fn ras_sample<R: Rng>(source: &KgPair, target: usize, rng: &mut R) -> KgPair {
    let filtered = source.filter_to_alignment();
    if filtered.num_aligned() <= target {
        return filtered;
    }
    let mut idx: Vec<usize> = (0..filtered.num_aligned()).collect();
    idx.shuffle(rng);
    keep_pairs(&filtered, idx.into_iter().take(target))
}

/// PageRank-based sampling: rank KG1's aligned entities by PageRank, sample
/// `target` of them with probability proportional to their score, and pull in
/// their counterparts from KG2.
pub fn prs_sample<R: Rng>(source: &KgPair, target: usize, rng: &mut R) -> KgPair {
    let filtered = source.filter_to_alignment();
    if filtered.num_aligned() <= target {
        return filtered;
    }
    let pr = pagerank(&filtered.kg1, PageRankConfig::default());
    // Efraimidis–Spirakis weighted sampling without replacement.
    let mut keyed: Vec<(f64, usize)> = filtered
        .alignment
        .iter()
        .enumerate()
        .map(|(i, &(e1, _))| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            (u.powf(1.0 / pr[e1.idx()].max(1e-12)), i)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite keys"));
    keep_pairs(&filtered, keyed.into_iter().take(target).map(|(_, i)| i))
}

fn keep_pairs(pair: &KgPair, indices: impl Iterator<Item = usize>) -> KgPair {
    let mut keep1: HashSet<EntityId> = HashSet::new();
    let mut keep2: HashSet<EntityId> = HashSet::new();
    for i in indices {
        let (a, b) = pair.alignment[i];
        keep1.insert(a);
        keep2.insert(b);
    }
    pair.restrict(&keep1, &keep2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::DegreeDistribution;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;
    use openea_synth::{DatasetFamily, PresetConfig};

    fn source() -> KgPair {
        PresetConfig::new(DatasetFamily::EnFr, 1200, false, 21).generate()
    }

    #[test]
    fn ras_hits_target_size() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(0);
        let s = ras_sample(&src, 300, &mut rng);
        assert_eq!(s.num_aligned(), 300);
        assert_eq!(s.kg1.num_entities(), 300);
    }

    #[test]
    fn prs_hits_target_size() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(1);
        let s = prs_sample(&src, 300, &mut rng);
        assert_eq!(s.num_aligned(), 300);
    }

    #[test]
    fn ras_is_much_sparser_than_source() {
        let src = source();
        let filtered = src.filter_to_alignment();
        let mut rng = SmallRng::seed_from_u64(2);
        let s = ras_sample(&src, 300, &mut rng);
        // The paper's key criticism of RAS: random sampling destroys density.
        assert!(s.kg1.avg_degree() < filtered.kg1.avg_degree() / 2.0);
    }

    #[test]
    fn prs_keeps_higher_degree_than_ras() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(3);
        let ras = ras_sample(&src, 300, &mut rng);
        let prs = prs_sample(&src, 300, &mut rng);
        assert!(prs.kg1.avg_degree() > ras.kg1.avg_degree());
    }

    #[test]
    fn ras_degree_distribution_diverges_from_source() {
        let src = source();
        let filtered = src.filter_to_alignment();
        let q = DegreeDistribution::of(&filtered.kg1);
        let mut rng = SmallRng::seed_from_u64(4);
        let ras = ras_sample(&src, 300, &mut rng);
        let p = DegreeDistribution::of(&ras.kg1);
        assert!(p.js_divergence(&q) > 0.05, "js = {}", p.js_divergence(&q));
    }

    #[test]
    fn small_source_is_returned_filtered() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(5);
        let s = ras_sample(&src, 10_000, &mut rng);
        assert_eq!(s.num_aligned(), src.filter_to_alignment().num_aligned());
    }
}
