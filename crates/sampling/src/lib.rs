//! # openea-sampling
//!
//! The paper's dataset-construction machinery: **IDS** (iterative
//! degree-based sampling, Algorithm 1), the two baseline samplers **RAS**
//! (random alignment sampling) and **PRS** (PageRank-based sampling), and the
//! dataset-quality report behind Table 3.
//!
//! All samplers consume a source [`openea_core::KgPair`] (two KGs plus reference
//! alignment) and produce a smaller pair with `N` aligned entities per side.

pub mod ids;
pub mod quality;
pub mod ras;

pub use ids::{ids_sample, IdsConfig, IdsOutcome};
pub use quality::{sample_quality, SampleQuality};
pub use ras::{prs_sample, ras_sample};
