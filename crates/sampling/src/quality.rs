//! The dataset-quality report of Table 3: alignment size, average degree,
//! JS divergence to the source, isolated-entity fraction and clustering
//! coefficient, per KG.

use openea_core::{DegreeDistribution, KgPair};
use openea_graph::average_clustering_coefficient;

/// Quality metrics for one KG of a sampled dataset (one row of Table 3).
#[derive(Clone, Debug)]
pub struct SampleQuality {
    pub kg_name: String,
    pub num_aligned: usize,
    pub avg_degree: f64,
    /// JS divergence of the sample's degree distribution to the source's.
    pub js_to_source: f64,
    /// Fraction of entities with no relation triples.
    pub isolated_fraction: f64,
    pub clustering_coefficient: f64,
}

/// Computes Table-3 metrics for both KGs of `sample` against `source`
/// (which is filtered to its reference alignment first, as in the paper).
pub fn sample_quality(source: &KgPair, sample: &KgPair) -> (SampleQuality, SampleQuality) {
    let filtered = source.filter_to_alignment();
    let mk = |src_kg: &openea_core::KnowledgeGraph, smp_kg: &openea_core::KnowledgeGraph| {
        let q = DegreeDistribution::of(src_kg);
        let p = DegreeDistribution::of(smp_kg);
        let n = smp_kg.num_entities();
        SampleQuality {
            kg_name: smp_kg.name().to_owned(),
            num_aligned: sample.num_aligned(),
            avg_degree: smp_kg.avg_degree(),
            js_to_source: p.js_divergence(&q),
            isolated_fraction: if n == 0 {
                0.0
            } else {
                smp_kg.num_isolated() as f64 / n as f64
            },
            clustering_coefficient: average_clustering_coefficient(smp_kg),
        }
    };
    (
        mk(&filtered.kg1, &sample.kg1),
        mk(&filtered.kg2, &sample.kg2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ids_sample, ras_sample, IdsConfig};
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;
    use openea_synth::{DatasetFamily, PresetConfig};

    #[test]
    fn ids_beats_ras_on_table3_metrics() {
        let src = PresetConfig::new(DatasetFamily::EnFr, 1200, false, 31).generate();
        let mut rng = SmallRng::seed_from_u64(0);
        let ids = ids_sample(
            &src,
            IdsConfig {
                target: 300,
                mu: 15,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        let ras = ras_sample(&src, 300, &mut rng);
        let (ids_q, _) = sample_quality(&src, &ids.pair);
        let (ras_q, _) = sample_quality(&src, &ras);
        // The paper's Table 3 ordering: IDS has lower JS, higher degree,
        // fewer isolates.
        assert!(ids_q.js_to_source < ras_q.js_to_source);
        assert!(ids_q.avg_degree > ras_q.avg_degree);
        assert!(ids_q.isolated_fraction <= ras_q.isolated_fraction);
    }

    #[test]
    fn identity_sample_has_zero_divergence() {
        let src = PresetConfig::new(DatasetFamily::EnFr, 400, false, 32).generate();
        let filtered = src.filter_to_alignment();
        let (q1, q2) = sample_quality(&src, &filtered);
        assert!(q1.js_to_source < 1e-9);
        assert!(q2.js_to_source < 1e-9);
        assert_eq!(q1.num_aligned, filtered.num_aligned());
    }
}
