//! Iterative degree-based sampling (IDS) — Algorithm 1 of the paper.
//!
//! IDS shrinks two KGs simultaneously to `N` aligned entities while keeping
//! each sample's degree distribution close (in Jensen–Shannon divergence) to
//! its source KG. Each round it plans, per degree value `x`, a deletion
//! budget `dsize(x, μ) = μ·(1 + P(x) − Q(x))` — deleting more aggressively
//! where the current proportion `P(x)` overshoots the source proportion
//! `Q(x)` — and picks victims with probability inversely related to their
//! PageRank, protecting structurally important entities.

use openea_core::{DegreeDistribution, EntityId, KgPair};
use openea_graph::{pagerank, PageRankConfig};
use openea_runtime::rng::Rng;
use std::collections::HashSet;

/// Parameters of [`ids_sample`].
#[derive(Clone, Copy, Debug)]
pub struct IdsConfig {
    /// Target number of aligned entities per KG.
    pub target: usize,
    /// Base deletion step size μ (paper: 100 for 15K, 500 for 100K).
    pub mu: usize,
    /// JS-divergence acceptance threshold ε (paper: 5%).
    pub epsilon: f64,
    /// Maximum number of restarts when the JS check fails.
    pub max_restarts: usize,
}

impl Default for IdsConfig {
    fn default() -> Self {
        Self {
            target: 1000,
            mu: 20,
            epsilon: 0.05,
            max_restarts: 4,
        }
    }
}

/// Result of an IDS run.
#[derive(Clone, Debug)]
pub struct IdsOutcome {
    pub pair: KgPair,
    /// JS divergence of each sampled KG to its source.
    pub js1: f64,
    pub js2: f64,
    /// Whether both divergences met ε.
    pub converged: bool,
    /// Number of restarts consumed.
    pub restarts: usize,
}

/// Runs IDS on `source`, producing a pair with exactly `cfg.target` aligned
/// entities (or the filtered source if it is already small enough).
pub fn ids_sample<R: Rng>(source: &KgPair, cfg: IdsConfig, rng: &mut R) -> IdsOutcome {
    // Line 1: only retain entities in the reference alignment.
    let filtered = source.filter_to_alignment();
    // Line 2: source degree distributions (of the filtered source, which is
    // what the sample can at best approximate).
    let q1 = DegreeDistribution::of(&filtered.kg1);
    let q2 = DegreeDistribution::of(&filtered.kg2);

    if filtered.num_aligned() <= cfg.target {
        return IdsOutcome {
            pair: filtered,
            js1: 0.0,
            js2: 0.0,
            converged: true,
            restarts: 0,
        };
    }

    let mut best: Option<IdsOutcome> = None;
    for restart in 0..=cfg.max_restarts {
        let pair = ids_one_run(&filtered, &q1, &q2, cfg, rng);
        let js1 = DegreeDistribution::of(&pair.kg1).js_divergence(&q1);
        let js2 = DegreeDistribution::of(&pair.kg2).js_divergence(&q2);
        let converged = js1 <= cfg.epsilon && js2 <= cfg.epsilon;
        let outcome = IdsOutcome {
            pair,
            js1,
            js2,
            converged,
            restarts: restart,
        };
        if converged {
            return outcome;
        }
        match &best {
            Some(b) if b.js1 + b.js2 <= js1 + js2 => {}
            _ => best = Some(outcome),
        }
    }
    best.expect("at least one IDS run")
}

/// One inner run (lines 4–11): iterative deletion until the target size.
fn ids_one_run<R: Rng>(
    filtered: &KgPair,
    q1: &DegreeDistribution,
    q2: &DegreeDistribution,
    cfg: IdsConfig,
    rng: &mut R,
) -> KgPair {
    let mut ds = filtered.clone();
    while ds.num_aligned() > cfg.target {
        let over = ds.num_aligned() - cfg.target;

        // Plan per-KG victim sets (entity ids in the *current* pair).
        let victims1 = plan_deletions(&ds, 0, q1, cfg.mu, rng);
        let victims2 = plan_deletions(&ds, 1, q2, cfg.mu, rng);

        // Translate victims into alignment pairs to delete; a pair dies if
        // either side was picked. Cap the number of deleted pairs at `over`
        // so we land exactly on the target.
        let set1: HashSet<EntityId> = victims1.into_iter().collect();
        let set2: HashSet<EntityId> = victims2.into_iter().collect();
        let mut doomed: Vec<usize> = ds
            .alignment
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| set1.contains(&a) || set2.contains(&b))
            .map(|(i, _)| i)
            .collect();
        if doomed.is_empty() {
            // Degenerate plan (tiny graphs): fall back to a random pair.
            doomed.push(rng.gen_range(0..ds.num_aligned()));
        }
        if doomed.len() > over {
            // Keep a random subset of exactly `over` pairs to delete.
            partial_shuffle(&mut doomed, over, rng);
            doomed.truncate(over);
        }
        let doomed: HashSet<usize> = doomed.into_iter().collect();
        let keep1: HashSet<EntityId> = ds
            .alignment
            .iter()
            .enumerate()
            .filter(|(i, _)| !doomed.contains(i))
            .map(|(_, &(a, _))| a)
            .collect();
        let keep2: HashSet<EntityId> = ds
            .alignment
            .iter()
            .enumerate()
            .filter(|(i, _)| !doomed.contains(i))
            .map(|(_, &(_, b))| b)
            .collect();
        // Line 10: filter by (the surviving) reference alignment.
        ds = ds.restrict(&keep1, &keep2);
    }
    ds
}

/// Lines 7–9 for one KG: per-degree deletion budgets, PageRank-weighted
/// victim selection.
fn plan_deletions<R: Rng>(
    ds: &KgPair,
    side: u8,
    q: &DegreeDistribution,
    mu: usize,
    rng: &mut R,
) -> Vec<EntityId> {
    let kg = if side == 0 { &ds.kg1 } else { &ds.kg2 };
    let degrees = kg.degrees();
    let p = DegreeDistribution::from_degrees(&degrees);
    let pr = pagerank(kg, PageRankConfig::default());

    // Group entities by degree.
    let max_deg = degrees.iter().copied().max().unwrap_or(0);
    let mut groups: Vec<Vec<EntityId>> = vec![Vec::new(); max_deg + 1];
    for (i, &d) in degrees.iter().enumerate() {
        groups[d].push(EntityId::from_idx(i));
    }

    let mut victims = Vec::new();
    // The paper's dsize(x, μ) = μ·(1 + P(x) − Q(x)) assumes degree classes
    // far larger than μ (DBpedia-scale); at library scale a flat per-class
    // budget annihilates the small high-degree classes in one round. We keep
    // the algorithm's intent — delete ~μ entities per round, concentrated on
    // degrees whose proportion P(x) overshoots the source proportion Q(x),
    // choosing victims by inverse PageRank — but compute each class budget
    // from its *excess* over the post-round target count, which is the
    // strongly self-correcting form of the same term. Deleting an entity
    // also lowers its neighbours' degrees, repopulating the low-degree
    // classes; this rule therefore keeps shaving the (over-represented) low
    // end while hubs are only ever demoted gradually, preserving both the
    // degree distribution and connectivity.
    let n = degrees.len();
    let n_next = n.saturating_sub(mu).max(1) as f64;
    let excess: Vec<f64> = groups
        .iter()
        .enumerate()
        .map(|(x, g)| (g.len() as f64 - q.proportion(x) * n_next).max(0.0))
        .collect();
    let total_excess: f64 = excess.iter().sum();
    if total_excess <= 0.0 {
        return victims;
    }
    let _ = p; // P(x) enters through the excess (c(x) = P(x)·n).
    for (x, group) in groups.iter().enumerate() {
        if group.is_empty() || excess[x] == 0.0 {
            continue;
        }
        let budget_f = mu as f64 * excess[x] / total_excess;
        let mut budget = budget_f.floor() as usize;
        if rng.gen_bool((budget_f - budget as f64).clamp(0.0, 1.0)) {
            budget += 1;
        }
        let budget = budget.min(group.len());
        if budget == 0 {
            continue;
        }
        // Deletion probability decreases with PageRank: weight 1/(pr+δ).
        let weights: Vec<f64> = group.iter().map(|e| 1.0 / (pr[e.idx()] + 1e-9)).collect();
        victims.extend(weighted_sample_without_replacement(
            group, &weights, budget, rng,
        ));
    }
    victims
}

/// Weighted sampling without replacement via exponential-sort keys
/// (Efraimidis–Spirakis): take the `k` items with the largest `u^(1/w)`.
fn weighted_sample_without_replacement<R: Rng>(
    items: &[EntityId],
    weights: &[f64],
    k: usize,
    rng: &mut R,
) -> Vec<EntityId> {
    let mut keyed: Vec<(f64, EntityId)> = items
        .iter()
        .zip(weights)
        .map(|(&e, &w)| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            (u.powf(1.0 / w.max(1e-12)), e)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));
    keyed.into_iter().take(k).map(|(_, e)| e).collect()
}

/// Fisher–Yates over the first `k` positions only.
fn partial_shuffle<R: Rng, T>(v: &mut [T], k: usize, rng: &mut R) {
    let n = v.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;
    use openea_synth::{DatasetFamily, PresetConfig};

    fn source() -> KgPair {
        PresetConfig::new(DatasetFamily::EnFr, 1200, false, 11).generate()
    }

    #[test]
    fn ids_hits_target_size_exactly() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(0);
        let out = ids_sample(
            &src,
            IdsConfig {
                target: 300,
                mu: 15,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.pair.num_aligned(), 300);
        assert_eq!(out.pair.kg1.num_entities(), 300);
        assert_eq!(out.pair.kg2.num_entities(), 300);
    }

    #[test]
    fn ids_keeps_degree_distribution_close() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = ids_sample(
            &src,
            IdsConfig {
                target: 400,
                mu: 15,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        // The headline property of the algorithm.
        assert!(out.js1 < 0.08, "js1 = {}", out.js1);
        assert!(out.js2 < 0.08, "js2 = {}", out.js2);
    }

    #[test]
    fn ids_sample_average_degree_tracks_source() {
        let src = source();
        let filtered = src.filter_to_alignment();
        let mut rng = SmallRng::seed_from_u64(2);
        let out = ids_sample(
            &src,
            IdsConfig {
                target: 400,
                mu: 15,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        let src_deg = filtered.kg1.avg_degree();
        let smp_deg = out.pair.kg1.avg_degree();
        assert!(
            (smp_deg - src_deg).abs() / src_deg < 0.45,
            "source {src_deg:.2} vs sample {smp_deg:.2}"
        );
    }

    #[test]
    fn small_source_returns_filtered_pair() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(3);
        let out = ids_sample(
            &src,
            IdsConfig {
                target: 10_000,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        assert!(out.converged);
        assert_eq!(
            out.pair.num_aligned(),
            src.filter_to_alignment().num_aligned()
        );
    }

    #[test]
    fn sampled_pair_alignment_is_consistent() {
        let src = source();
        let mut rng = SmallRng::seed_from_u64(4);
        let out = ids_sample(
            &src,
            IdsConfig {
                target: 250,
                mu: 20,
                ..IdsConfig::default()
            },
            &mut rng,
        );
        // Every entity in the sample is aligned (filtering invariant).
        assert_eq!(out.pair.kg1.num_entities(), out.pair.num_aligned());
        assert_eq!(out.pair.kg2.num_entities(), out.pair.num_aligned());
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = SmallRng::seed_from_u64(5);
        let items: Vec<EntityId> = (0..100).map(EntityId).collect();
        // Item 0 has overwhelming weight.
        let mut weights = vec![0.001; 100];
        weights[0] = 1000.0;
        let mut hits = 0;
        for _ in 0..50 {
            let picked = weighted_sample_without_replacement(&items, &weights, 1, &mut rng);
            if picked[0] == EntityId(0) {
                hits += 1;
            }
        }
        assert!(hits > 45, "hits = {hits}");
    }

    #[test]
    fn weighted_sampling_without_replacement_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(6);
        let items: Vec<EntityId> = (0..20).map(EntityId).collect();
        let weights = vec![1.0; 20];
        let picked = weighted_sample_without_replacement(&items, &weights, 20, &mut rng);
        let set: HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 20);
    }
}
