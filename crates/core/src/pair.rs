//! Pairs of knowledge graphs with reference entity alignment, and the
//! train/validation/test splitting scheme used throughout the paper.

use crate::ids::EntityId;
use crate::kg::KnowledgeGraph;
use openea_runtime::rng::Rng;
use openea_runtime::rng::SliceRandom;
use std::collections::HashSet;

/// A pair of aligned entities `(e1 ∈ KG1, e2 ∈ KG2)`.
pub type AlignedPair = (EntityId, EntityId);

/// Two knowledge graphs plus their reference (gold) entity alignment.
///
/// The reference alignment is 1-to-1: each entity appears in at most one pair.
#[derive(Clone, Debug)]
pub struct KgPair {
    pub kg1: KnowledgeGraph,
    pub kg2: KnowledgeGraph,
    pub alignment: Vec<AlignedPair>,
}

impl KgPair {
    /// Creates a pair, validating id ranges and the 1-to-1 property.
    ///
    /// # Panics
    /// Panics if an aligned id is out of range or an entity occurs twice.
    pub fn new(kg1: KnowledgeGraph, kg2: KnowledgeGraph, alignment: Vec<AlignedPair>) -> Self {
        let mut seen1 = HashSet::with_capacity(alignment.len());
        let mut seen2 = HashSet::with_capacity(alignment.len());
        for &(e1, e2) in &alignment {
            assert!(
                e1.idx() < kg1.num_entities(),
                "aligned entity {e1:?} out of range in KG1"
            );
            assert!(
                e2.idx() < kg2.num_entities(),
                "aligned entity {e2:?} out of range in KG2"
            );
            assert!(seen1.insert(e1), "entity {e1:?} aligned twice in KG1");
            assert!(seen2.insert(e2), "entity {e2:?} aligned twice in KG2");
        }
        Self {
            kg1,
            kg2,
            alignment,
        }
    }

    pub fn num_aligned(&self) -> usize {
        self.alignment.len()
    }

    /// Restricts both KGs to the entities that occur in the reference
    /// alignment (line 1 of the paper's Algorithm 1), remapping the alignment.
    pub fn filter_to_alignment(&self) -> KgPair {
        let keep1: HashSet<EntityId> = self.alignment.iter().map(|&(a, _)| a).collect();
        let keep2: HashSet<EntityId> = self.alignment.iter().map(|&(_, b)| b).collect();
        self.restrict(&keep1, &keep2)
    }

    /// Induced sub-pair over the given entity sets; alignment pairs survive
    /// only when both endpoints survive.
    pub fn restrict(&self, keep1: &HashSet<EntityId>, keep2: &HashSet<EntityId>) -> KgPair {
        let (kg1, map1) = self.kg1.induced_subgraph(keep1);
        let (kg2, map2) = self.kg2.induced_subgraph(keep2);
        let alignment = self
            .alignment
            .iter()
            .filter_map(|&(a, b)| match (map1[a.idx()], map2[b.idx()]) {
                (Some(na), Some(nb)) => Some((na, nb)),
                _ => None,
            })
            .collect();
        KgPair::new(kg1, kg2, alignment)
    }

    /// The degree of an aligned pair as defined for Figure 5 of the paper:
    /// the sum of relation triples of the two involved entities.
    pub fn alignment_degree(&self, pair: AlignedPair) -> usize {
        self.kg1.degree(pair.0) + self.kg2.degree(pair.1)
    }
}

/// One cross-validation fold: 20% train / 10% validation / 70% test, the
/// paper's split (Sect. 5.1).
#[derive(Clone, Debug, Default)]
pub struct FoldSplit {
    pub train: Vec<AlignedPair>,
    pub valid: Vec<AlignedPair>,
    pub test: Vec<AlignedPair>,
}

impl FoldSplit {
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

/// Splits the reference alignment into `k` cross-validation folds.
///
/// The alignment is shuffled once and divided into `k` disjoint buckets. Fold
/// `i` uses bucket `i` as training data; the remainder is split 1:7 into
/// validation and test, matching the paper's 20%/10%/70% protocol at `k = 5`.
pub fn k_fold_splits<R: Rng>(alignment: &[AlignedPair], k: usize, rng: &mut R) -> Vec<FoldSplit> {
    assert!(k >= 2, "need at least two folds");
    let mut shuffled = alignment.to_vec();
    shuffled.shuffle(rng);
    let n = shuffled.len();
    let mut folds = Vec::with_capacity(k);
    for i in 0..k {
        let lo = n * i / k;
        let hi = n * (i + 1) / k;
        let train = shuffled[lo..hi].to_vec();
        let rest: Vec<AlignedPair> = shuffled[..lo]
            .iter()
            .chain(&shuffled[hi..])
            .copied()
            .collect();
        // Validation takes 1/8 of the remainder (10% of the total at k = 5).
        let v = rest.len() / 8;
        let valid = rest[..v].to_vec();
        let test = rest[v..].to_vec();
        folds.push(FoldSplit { train, valid, test });
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::KgBuilder;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    fn pair() -> KgPair {
        let mut b1 = KgBuilder::new("g1");
        b1.add_rel_triple("a1", "r", "b1");
        b1.add_rel_triple("b1", "r", "c1");
        b1.add_rel_triple("c1", "r", "d1");
        let mut b2 = KgBuilder::new("g2");
        b2.add_rel_triple("a2", "s", "b2");
        b2.add_rel_triple("b2", "s", "c2");
        b2.add_rel_triple("c2", "s", "d2");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let alignment = ["a", "b", "c", "d"]
            .iter()
            .map(|n| {
                (
                    kg1.entity_by_name(&format!("{n}1")).unwrap(),
                    kg2.entity_by_name(&format!("{n}2")).unwrap(),
                )
            })
            .collect();
        KgPair::new(kg1, kg2, alignment)
    }

    #[test]
    fn new_validates_one_to_one() {
        let p = pair();
        assert_eq!(p.num_aligned(), 4);
    }

    #[test]
    #[should_panic(expected = "aligned twice")]
    fn duplicate_alignment_panics() {
        let p = pair();
        let mut bad = p.alignment.clone();
        bad.push((bad[0].0, bad[1].1));
        KgPair::new(p.kg1, p.kg2, bad);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_alignment_panics() {
        let p = pair();
        KgPair::new(p.kg1, p.kg2, vec![(EntityId(99), EntityId(0))]);
    }

    #[test]
    fn restrict_remaps_alignment() {
        let p = pair();
        let keep1: HashSet<EntityId> = ["a1", "b1"]
            .iter()
            .map(|n| p.kg1.entity_by_name(n).unwrap())
            .collect();
        let keep2: HashSet<EntityId> = ["a2", "b2", "c2"]
            .iter()
            .map(|n| p.kg2.entity_by_name(n).unwrap())
            .collect();
        let sub = p.restrict(&keep1, &keep2);
        assert_eq!(sub.kg1.num_entities(), 2);
        assert_eq!(sub.kg2.num_entities(), 3);
        // Only (a, b) survive on both sides.
        assert_eq!(sub.num_aligned(), 2);
        for &(e1, e2) in &sub.alignment {
            let n1 = sub.kg1.entity_name(e1);
            let n2 = sub.kg2.entity_name(e2);
            assert_eq!(n1.trim_end_matches('1'), n2.trim_end_matches('2'));
        }
    }

    #[test]
    fn filter_to_alignment_is_noop_when_all_aligned() {
        let p = pair();
        let f = p.filter_to_alignment();
        assert_eq!(f.kg1.num_entities(), p.kg1.num_entities());
        assert_eq!(f.num_aligned(), p.num_aligned());
    }

    #[test]
    fn alignment_degree_sums_both_sides() {
        let p = pair();
        let (a1, a2) = p.alignment[0];
        assert_eq!(
            p.alignment_degree((a1, a2)),
            p.kg1.degree(a1) + p.kg2.degree(a2)
        );
    }

    #[test]
    fn five_fold_split_proportions() {
        let alignment: Vec<AlignedPair> = (0..1000).map(|i| (EntityId(i), EntityId(i))).collect();
        let mut rng = SmallRng::seed_from_u64(7);
        let folds = k_fold_splits(&alignment, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        for f in &folds {
            assert_eq!(f.total(), 1000);
            assert_eq!(f.train.len(), 200);
            assert_eq!(f.valid.len(), 100);
            assert_eq!(f.test.len(), 700);
        }
        // Train buckets are disjoint and cover everything.
        let mut all: Vec<_> = folds.iter().flat_map(|f| f.train.iter().copied()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn fold_parts_are_disjoint_within_a_fold() {
        let alignment: Vec<AlignedPair> = (0..97).map(|i| (EntityId(i), EntityId(i))).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        for f in k_fold_splits(&alignment, 5, &mut rng) {
            let mut seen = HashSet::new();
            for p in f.train.iter().chain(&f.valid).chain(&f.test) {
                assert!(seen.insert(*p));
            }
            assert_eq!(seen.len(), 97);
        }
    }
}
