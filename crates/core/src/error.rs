//! Error types for dataset I/O and validation.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced while reading or writing datasets on disk.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem error, annotated with the path involved.
    Io { path: PathBuf, source: io::Error },
    /// A line in a triple/link file did not have the expected column count.
    Malformed {
        path: PathBuf,
        line: usize,
        expected_cols: usize,
    },
    /// A link file referenced an entity absent from the corresponding KG.
    UnknownEntity {
        path: PathBuf,
        line: usize,
        name: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "i/o error on {}: {source}", path.display()),
            Error::Malformed {
                path,
                line,
                expected_cols,
            } => write!(
                f,
                "{}:{line}: expected {expected_cols} tab-separated columns",
                path.display()
            ),
            Error::UnknownEntity { path, line, name } => {
                write!(f, "{}:{line}: unknown entity {name:?}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl Error {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Malformed {
            path: "x/rel_triples_1".into(),
            line: 3,
            expected_cols: 3,
        };
        assert_eq!(
            e.to_string(),
            "x/rel_triples_1:3: expected 3 tab-separated columns"
        );
        let e = Error::UnknownEntity {
            path: "x/ent_links".into(),
            line: 9,
            name: "foo".into(),
        };
        assert!(e.to_string().contains("unknown entity"));
        let e = Error::io("y", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("i/o error on y"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
