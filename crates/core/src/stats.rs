//! Dataset statistics used throughout the paper's tables and figures:
//! degree distributions (Figures 2/3), summary counts (Table 2) and the
//! sampling-quality metrics of Table 3.

use crate::kg::KnowledgeGraph;
use openea_runtime::json::{object, Json, ToJson};

/// An empirical distribution over entity degrees: `p[d]` is the proportion of
/// entities with relational degree `d`.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeDistribution {
    props: Vec<f64>,
}

impl DegreeDistribution {
    /// Computes the degree distribution of a KG. An empty KG yields an empty
    /// distribution.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        Self::from_degrees(&kg.degrees())
    }

    /// Builds the distribution from raw degrees.
    pub fn from_degrees(degrees: &[usize]) -> Self {
        if degrees.is_empty() {
            return Self { props: Vec::new() };
        }
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mut counts = vec![0usize; max + 1];
        for &d in degrees {
            counts[d] += 1;
        }
        let n = degrees.len() as f64;
        Self {
            props: counts.into_iter().map(|c| c as f64 / n).collect(),
        }
    }

    /// Proportion of entities with degree `d` (0 beyond the observed maximum).
    pub fn proportion(&self, d: usize) -> f64 {
        self.props.get(d).copied().unwrap_or(0.0)
    }

    /// The largest observed degree, or `None` for an empty distribution.
    pub fn max_degree(&self) -> Option<usize> {
        if self.props.is_empty() {
            None
        } else {
            Some(self.props.len() - 1)
        }
    }

    /// Proportions indexed by degree.
    pub fn proportions(&self) -> &[f64] {
        &self.props
    }

    /// Jensen–Shannon divergence to another degree distribution (Eq. 6 of the
    /// paper), in nats. Zero iff the distributions are identical; bounded by
    /// `ln 2`.
    pub fn js_divergence(&self, other: &DegreeDistribution) -> f64 {
        let n = self.props.len().max(other.props.len());
        let mut js = 0.0;
        for d in 0..n {
            let q = self.proportion(d);
            let p = other.proportion(d);
            let m = 0.5 * (q + p);
            if q > 0.0 {
                js += 0.5 * q * (q / m).ln();
            }
            if p > 0.0 {
                js += 0.5 * p * (p / m).ln();
            }
        }
        js.max(0.0)
    }
}

/// Summary counts for one KG of a dataset, as reported in Table 2.
#[derive(Clone, Debug)]
pub struct KgStats {
    pub name: String,
    pub entities: usize,
    pub relations: usize,
    pub attributes: usize,
    pub rel_triples: usize,
    pub attr_triples: usize,
    pub avg_degree: f64,
    /// Fraction of entities with no relation triple (Table 3, "Isolates").
    pub isolated_fraction: f64,
}

impl KgStats {
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let n = kg.num_entities();
        Self {
            name: kg.name().to_owned(),
            entities: n,
            relations: kg.num_relations(),
            attributes: kg.num_attributes(),
            rel_triples: kg.num_rel_triples(),
            attr_triples: kg.num_attr_triples(),
            avg_degree: kg.avg_degree(),
            isolated_fraction: if n == 0 {
                0.0
            } else {
                kg.num_isolated() as f64 / n as f64
            },
        }
    }
}

impl ToJson for KgStats {
    fn to_json(&self) -> Json {
        object([
            ("name", self.name.to_json()),
            ("entities", self.entities.to_json()),
            ("relations", self.relations.to_json()),
            ("attributes", self.attributes.to_json()),
            ("rel_triples", self.rel_triples.to_json()),
            ("attr_triples", self.attr_triples.to_json()),
            ("avg_degree", self.avg_degree.to_json()),
            ("isolated_fraction", self.isolated_fraction.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::KgBuilder;
    use openea_runtime::testkit::prelude::*;

    fn chain(n: usize) -> KnowledgeGraph {
        let mut b = KgBuilder::new("chain");
        for i in 0..n.saturating_sub(1) {
            b.add_rel_triple(&format!("e{i}"), "r", &format!("e{}", i + 1));
        }
        b.build()
    }

    #[test]
    fn chain_degree_distribution() {
        let kg = chain(5); // degrees: 1,2,2,2,1
        let d = DegreeDistribution::of(&kg);
        assert_eq!(d.max_degree(), Some(2));
        assert!((d.proportion(1) - 0.4).abs() < 1e-12);
        assert!((d.proportion(2) - 0.6).abs() < 1e-12);
        assert_eq!(d.proportion(0), 0.0);
        assert_eq!(d.proportion(77), 0.0);
    }

    #[test]
    fn js_divergence_identical_is_zero() {
        let kg = chain(10);
        let d = DegreeDistribution::of(&kg);
        assert!(d.js_divergence(&d) < 1e-12);
    }

    #[test]
    fn js_divergence_disjoint_is_ln2() {
        let a = DegreeDistribution::from_degrees(&[1, 1, 1]);
        let b = DegreeDistribution::from_degrees(&[2, 2, 2]);
        assert!((a.js_divergence(&b) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn js_divergence_is_symmetric() {
        let a = DegreeDistribution::from_degrees(&[1, 2, 2, 3, 5]);
        let b = DegreeDistribution::from_degrees(&[1, 1, 4, 4]);
        assert!((a.js_divergence(&b) - b.js_divergence(&a)).abs() < 1e-12);
    }

    #[test]
    fn kg_stats_counts() {
        let mut b = KgBuilder::new("s");
        b.add_rel_triple("a", "r", "b");
        b.add_attr_triple("a", "p", "v");
        b.add_entity("lonely");
        let kg = b.build();
        let s = KgStats::of(&kg);
        assert_eq!(s.entities, 3);
        assert_eq!(s.rel_triples, 1);
        assert_eq!(s.attr_triples, 1);
        assert!((s.isolated_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    props! {
        #[test]
        fn distribution_sums_to_one(degrees in vec_of(0usize..40, 1..200)) {
            let d = DegreeDistribution::from_degrees(&degrees);
            let total: f64 = d.proportions().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn js_divergence_bounds(
            a in vec_of(0usize..30, 1..100),
            b in vec_of(0usize..30, 1..100),
        ) {
            let da = DegreeDistribution::from_degrees(&a);
            let db = DegreeDistribution::from_degrees(&b);
            let js = da.js_divergence(&db);
            prop_assert!(js >= 0.0);
            prop_assert!(js <= std::f64::consts::LN_2 + 1e-9);
        }
    }
}
