//! String interning for entity URIs, relation/attribute names and literals.
//!
//! A [`Interner`] assigns dense `u32` indices to distinct strings in first-seen
//! order, so the rest of the library can work with copyable ids while still
//! being able to recover the original symbol for I/O and for name-based
//! matching (used by the conventional approaches).

use std::collections::HashMap;

/// A dense string interner. Indices are assigned in first-insertion order.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            names: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Interns `name`, returning its index. Existing names keep their index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("interner overflows u32");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, i);
        i
    }

    /// Looks up the index of `name` without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the string for index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn resolve(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, &**n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("dbpedia:Mount_Everest");
        let b = it.intern("wikidata:Q513");
        let a2 = it.intern("dbpedia:Mount_Everest");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a), "dbpedia:Mount_Everest");
        assert_eq!(it.resolve(b), "wikidata:Q513");
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = Interner::new();
        assert_eq!(it.get("x"), None);
        let i = it.intern("x");
        assert_eq!(it.get("x"), Some(i));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn indices_are_dense_and_in_insertion_order() {
        let mut it = Interner::new();
        for (k, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(it.intern(name), k as u32);
        }
        let collected: Vec<_> = it.iter().map(|(i, n)| (i, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned()),
                (3, "d".to_owned())
            ]
        );
    }

    props! {
        #[test]
        fn resolve_roundtrips(names in vec_of(string_of("abcdefghijklmnopqrstuvwxyz", 1..=8), 0..50)) {
            let mut it = Interner::new();
            let ids: Vec<u32> = names.iter().map(|n| it.intern(n)).collect();
            for (name, id) in names.iter().zip(&ids) {
                prop_assert_eq!(it.resolve(*id), name.as_str());
                prop_assert_eq!(it.get(name), Some(*id));
            }
            // Interner length equals the number of distinct names.
            let distinct: std::collections::HashSet<_> = names.iter().collect();
            prop_assert_eq!(it.len(), distinct.len());
        }
    }
}
