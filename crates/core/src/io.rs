//! Reading and writing datasets in the OpenEA on-disk layout.
//!
//! A dataset directory contains tab-separated files:
//!
//! ```text
//! rel_triples_1    h \t r \t t          relation triples of KG1
//! rel_triples_2
//! attr_triples_1   e \t a \t v          attribute triples of KG1
//! attr_triples_2
//! ent_links        e1 \t e2             reference entity alignment
//! 721_5fold/<k>/{train,valid,test}_links   cross-validation folds
//! ```

use crate::error::{Error, Result};
use crate::ids::EntityId;
use crate::kg::{KgBuilder, KnowledgeGraph};
use crate::pair::{AlignedPair, FoldSplit, KgPair};
use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn read_triple_file(path: &Path, mut add: impl FnMut(&str, &str, &str)) -> Result<()> {
    let file = fs::File::open(path).map_err(|e| Error::io(path, e))?;
    let reader = BufReader::new(file);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io(path, e))?;
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        match (cols.next(), cols.next(), cols.next()) {
            (Some(a), Some(b), Some(c)) => add(a, b, c),
            _ => {
                return Err(Error::Malformed {
                    path: path.into(),
                    line: lineno + 1,
                    expected_cols: 3,
                })
            }
        }
    }
    Ok(())
}

fn read_links(path: &Path) -> Result<Vec<(String, String)>> {
    let file = fs::File::open(path).map_err(|e| Error::io(path, e))?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::io(path, e))?;
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        match (cols.next(), cols.next()) {
            (Some(a), Some(b)) => out.push((a.to_owned(), b.to_owned())),
            _ => {
                return Err(Error::Malformed {
                    path: path.into(),
                    line: lineno + 1,
                    expected_cols: 2,
                })
            }
        }
    }
    Ok(out)
}

fn resolve_links(
    path: &Path,
    links: &[(String, String)],
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
) -> Result<Vec<AlignedPair>> {
    links
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let e1 = kg1.entity_by_name(a).ok_or_else(|| Error::UnknownEntity {
                path: path.into(),
                line: i + 1,
                name: a.clone(),
            })?;
            let e2 = kg2.entity_by_name(b).ok_or_else(|| Error::UnknownEntity {
                path: path.into(),
                line: i + 1,
                name: b.clone(),
            })?;
            Ok((e1, e2))
        })
        .collect()
}

/// Reads one KG of a dataset directory (`which` is 1 or 2). `extra_entities`
/// are registered even when they occur in no triple (isolated aligned
/// entities live only in `ent_links`).
fn read_kg<'a>(
    dir: &Path,
    which: u8,
    name: &str,
    extra_entities: impl Iterator<Item = &'a str>,
) -> Result<KnowledgeGraph> {
    let mut b = KgBuilder::new(name);
    read_triple_file(&dir.join(format!("rel_triples_{which}")), |h, r, t| {
        b.add_rel_triple(h, r, t);
    })?;
    let attr_path = dir.join(format!("attr_triples_{which}"));
    if attr_path.exists() {
        read_triple_file(&attr_path, |e, a, v| {
            b.add_attr_triple(e, a, v);
        })?;
    }
    for e in extra_entities {
        b.add_entity(e);
    }
    Ok(b.build())
}

/// Reads a full dataset (both KGs plus `ent_links`) from `dir`.
pub fn read_pair(dir: impl AsRef<Path>) -> Result<KgPair> {
    let dir = dir.as_ref();
    let links_path = dir.join("ent_links");
    let links = read_links(&links_path)?;
    let kg1 = read_kg(dir, 1, "KG1", links.iter().map(|(a, _)| a.as_str()))?;
    let kg2 = read_kg(dir, 2, "KG2", links.iter().map(|(_, b)| b.as_str()))?;
    let alignment = resolve_links(&links_path, &links, &kg1, &kg2)?;
    Ok(KgPair::new(kg1, kg2, alignment))
}

/// Reads the cross-validation folds stored under `dir/721_5fold`.
pub fn read_folds(dir: impl AsRef<Path>, pair: &KgPair) -> Result<Vec<FoldSplit>> {
    let base = dir.as_ref().join("721_5fold");
    let mut folds = Vec::new();
    for k in 1.. {
        let fold_dir = base.join(k.to_string());
        if !fold_dir.exists() {
            break;
        }
        let mut parts = [Vec::new(), Vec::new(), Vec::new()];
        for (slot, file) in ["train_links", "valid_links", "test_links"]
            .iter()
            .enumerate()
        {
            let path = fold_dir.join(file);
            let links = read_links(&path)?;
            parts[slot] = resolve_links(&path, &links, &pair.kg1, &pair.kg2)?;
        }
        let [train, valid, test] = parts;
        folds.push(FoldSplit { train, valid, test });
    }
    Ok(folds)
}

fn write_lines<I: IntoIterator<Item = String>>(path: &Path, lines: I) -> Result<()> {
    let file = fs::File::create(path).map_err(|e| Error::io(path, e))?;
    let mut w = BufWriter::new(file);
    for line in lines {
        writeln!(w, "{line}").map_err(|e| Error::io(path, e))?;
    }
    w.flush().map_err(|e| Error::io(path, e))
}

fn link_lines<'a>(
    pairs: &'a [AlignedPair],
    kg1: &'a KnowledgeGraph,
    kg2: &'a KnowledgeGraph,
) -> impl Iterator<Item = String> + 'a {
    pairs
        .iter()
        .map(move |&(a, b)| format!("{}\t{}", kg1.entity_name(a), kg2.entity_name(b)))
}

/// Writes a dataset (both KGs plus `ent_links`) into `dir`, creating it.
pub fn write_pair(dir: impl AsRef<Path>, pair: &KgPair) -> Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| Error::io(dir, e))?;
    for (which, kg) in [(1u8, &pair.kg1), (2, &pair.kg2)] {
        write_lines(
            &dir.join(format!("rel_triples_{which}")),
            kg.rel_triples().iter().map(|t| {
                format!(
                    "{}\t{}\t{}",
                    kg.entity_name(t.head),
                    kg.relation_name(t.rel),
                    kg.entity_name(t.tail)
                )
            }),
        )?;
        write_lines(
            &dir.join(format!("attr_triples_{which}")),
            kg.attr_triples().iter().map(|t| {
                format!(
                    "{}\t{}\t{}",
                    kg.entity_name(t.entity),
                    kg.attribute_name(t.attr),
                    kg.literal_value(t.value)
                )
            }),
        )?;
    }
    write_lines(
        &dir.join("ent_links"),
        link_lines(&pair.alignment, &pair.kg1, &pair.kg2),
    )
}

/// Writes cross-validation folds under `dir/721_5fold/<k>/`.
pub fn write_folds(dir: impl AsRef<Path>, pair: &KgPair, folds: &[FoldSplit]) -> Result<()> {
    for (k, fold) in folds.iter().enumerate() {
        let fold_dir = dir.as_ref().join("721_5fold").join((k + 1).to_string());
        fs::create_dir_all(&fold_dir).map_err(|e| Error::io(&fold_dir, e))?;
        for (file, part) in [
            ("train_links", &fold.train),
            ("valid_links", &fold.valid),
            ("test_links", &fold.test),
        ] {
            write_lines(&fold_dir.join(file), link_lines(part, &pair.kg1, &pair.kg2))?;
        }
    }
    Ok(())
}

/// Convenience: resolves alignment pairs back to entity-name pairs.
pub fn alignment_names(pair: &KgPair, pairs: &[AlignedPair]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|&(a, b)| {
            (
                pair.kg1.entity_name(a).to_owned(),
                pair.kg2.entity_name(b).to_owned(),
            )
        })
        .collect()
}

/// Re-export used by tests and the sampling crate to look up ids.
pub fn entity_ids_by_names(kg: &KnowledgeGraph, names: &[&str]) -> Vec<Option<EntityId>> {
    names.iter().map(|n| kg.entity_by_name(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::KgBuilder;
    use crate::pair::k_fold_splits;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    fn sample_pair() -> KgPair {
        let mut b1 = KgBuilder::new("KG1");
        b1.add_rel_triple("x/a", "x/r", "x/b");
        b1.add_rel_triple("x/b", "x/r", "x/c");
        b1.add_attr_triple("x/a", "x/name", "Alpha Centauri");
        let mut b2 = KgBuilder::new("KG2");
        b2.add_rel_triple("y/a", "y/s", "y/b");
        b2.add_rel_triple("y/c", "y/s", "y/b");
        b2.add_attr_triple("y/c", "y/label", "Gamma \"quoted\"");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let alignment = vec![
            (
                kg1.entity_by_name("x/a").unwrap(),
                kg2.entity_by_name("y/a").unwrap(),
            ),
            (
                kg1.entity_by_name("x/b").unwrap(),
                kg2.entity_by_name("y/b").unwrap(),
            ),
            (
                kg1.entity_by_name("x/c").unwrap(),
                kg2.entity_by_name("y/c").unwrap(),
            ),
        ];
        KgPair::new(kg1, kg2, alignment)
    }

    #[test]
    fn roundtrip_pair() {
        let dir = std::env::temp_dir().join(format!("openea_io_test_{}", std::process::id()));
        let pair = sample_pair();
        write_pair(&dir, &pair).unwrap();
        let back = read_pair(&dir).unwrap();
        assert_eq!(back.kg1.num_entities(), pair.kg1.num_entities());
        assert_eq!(back.kg2.num_rel_triples(), pair.kg2.num_rel_triples());
        assert_eq!(back.kg2.num_attr_triples(), 1);
        assert_eq!(back.num_aligned(), 3);
        let names = alignment_names(&back, &back.alignment);
        assert!(names.contains(&("x/a".to_owned(), "y/a".to_owned())));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn roundtrip_folds() {
        let dir = std::env::temp_dir().join(format!("openea_fold_test_{}", std::process::id()));
        let pair = sample_pair();
        let mut rng = SmallRng::seed_from_u64(1);
        let folds = k_fold_splits(&pair.alignment, 3, &mut rng);
        write_pair(&dir, &pair).unwrap();
        write_folds(&dir, &pair, &folds).unwrap();
        let back = read_pair(&dir).unwrap();
        let back_folds = read_folds(&dir, &back).unwrap();
        assert_eq!(back_folds.len(), 3);
        for (a, b) in folds.iter().zip(&back_folds) {
            assert_eq!(a.train.len(), b.train.len());
            assert_eq!(a.valid.len(), b.valid.len());
            assert_eq!(a.test.len(), b.test.len());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_file_errors() {
        let dir = std::env::temp_dir().join(format!("openea_bad_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("rel_triples_1"), "only_two\tcolumns\n").unwrap();
        fs::write(dir.join("rel_triples_2"), "").unwrap();
        fs::write(dir.join("ent_links"), "").unwrap();
        let err = read_pair(&dir).unwrap_err();
        assert!(matches!(err, Error::Malformed { line: 1, .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_only_entities_are_registered_as_isolated() {
        // An aligned entity may occur in no triple at all; `ent_links` is
        // then its only mention and reading must still succeed.
        let dir = std::env::temp_dir().join(format!("openea_unk_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("rel_triples_1"), "a\tr\tb\n").unwrap();
        fs::write(dir.join("rel_triples_2"), "c\ts\td\n").unwrap();
        fs::write(dir.join("ent_links"), "a\tlink_only\n").unwrap();
        let pair = read_pair(&dir).unwrap();
        assert_eq!(pair.num_aligned(), 1);
        let e = pair.kg2.entity_by_name("link_only").unwrap();
        assert_eq!(pair.kg2.degree(e), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_entity_in_fold_links_errors() {
        let dir = std::env::temp_dir().join(format!("openea_unkf_test_{}", std::process::id()));
        let fold_dir = dir.join("721_5fold").join("1");
        fs::create_dir_all(&fold_dir).unwrap();
        fs::write(dir.join("rel_triples_1"), "a\tr\tb\n").unwrap();
        fs::write(dir.join("rel_triples_2"), "c\ts\td\n").unwrap();
        fs::write(dir.join("ent_links"), "a\tc\n").unwrap();
        fs::write(fold_dir.join("train_links"), "a\tnot_there\n").unwrap();
        fs::write(fold_dir.join("valid_links"), "").unwrap();
        fs::write(fold_dir.join("test_links"), "").unwrap();
        let pair = read_pair(&dir).unwrap();
        let err = read_folds(&dir, &pair).unwrap_err();
        assert!(matches!(err, Error::UnknownEntity { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_io_error() {
        let err = read_pair("/definitely/not/a/dir").unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }
}
