//! Strongly-typed identifiers for the symbols of a knowledge graph.
//!
//! All identifiers are thin `u32` newtypes: a knowledge graph with more than
//! four billion entities is far outside the scope of this library (the paper's
//! largest datasets hold 100K entities), and 4-byte ids keep triple stores and
//! adjacency lists compact.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index, for direct use as a slice index.
            #[inline]
            pub fn idx(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in a `u32`.
            #[inline]
            pub fn from_idx(idx: usize) -> Self {
                Self(u32::try_from(idx).expect("id overflows u32"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.idx()
            }
        }
    };
}

define_id!(
    /// Identifier of an entity within a single [`crate::KnowledgeGraph`].
    EntityId
);
define_id!(
    /// Identifier of a relation (object property) within a single KG.
    RelationId
);
define_id!(
    /// Identifier of an attribute (datatype property) within a single KG.
    AttributeId
);
define_id!(
    /// Identifier of an interned literal value within a single KG.
    LiteralId
);

/// A relation triple `(head entity, relation, tail entity)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelTriple {
    pub head: EntityId,
    pub rel: RelationId,
    pub tail: EntityId,
}

impl RelTriple {
    #[inline]
    pub fn new(head: EntityId, rel: RelationId, tail: EntityId) -> Self {
        Self { head, rel, tail }
    }
}

/// An attribute triple `(entity, attribute, literal value)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrTriple {
    pub entity: EntityId,
    pub attr: AttributeId,
    pub value: LiteralId,
}

impl AttrTriple {
    #[inline]
    pub fn new(entity: EntityId, attr: AttributeId, value: LiteralId) -> Self {
        Self {
            entity,
            attr,
            value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let e = EntityId::from_idx(42);
        assert_eq!(e.idx(), 42);
        assert_eq!(usize::from(e), 42);
        assert_eq!(format!("{e}"), "42");
        assert_eq!(format!("{e:?}"), "EntityId(42)");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(10));
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn from_idx_overflow_panics() {
        let _ = EntityId::from_idx(usize::MAX);
    }

    #[test]
    fn triple_constructors() {
        let t = RelTriple::new(EntityId(1), RelationId(2), EntityId(3));
        assert_eq!(t.head, EntityId(1));
        assert_eq!(t.rel, RelationId(2));
        assert_eq!(t.tail, EntityId(3));
        let a = AttrTriple::new(EntityId(1), AttributeId(2), LiteralId(3));
        assert_eq!(a.entity, EntityId(1));
        assert_eq!(a.attr, AttributeId(2));
        assert_eq!(a.value, LiteralId(3));
    }

    #[test]
    fn triple_types_stay_small() {
        // Triples are stored by the million; keep them at 12 bytes.
        assert_eq!(std::mem::size_of::<RelTriple>(), 12);
        assert_eq!(std::mem::size_of::<AttrTriple>(), 12);
    }
}
