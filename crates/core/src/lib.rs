//! # openea-core
//!
//! Knowledge-graph data model, dataset I/O, cross-validation splits and
//! dataset statistics for **OpenEA-rs**, a Rust reproduction of
//! *"A Benchmarking Study of Embedding-based Entity Alignment for Knowledge
//! Graphs"* (Sun et al., VLDB 2020).
//!
//! The central types are:
//! - [`KnowledgeGraph`]: an immutable KG over interned symbols with adjacency
//!   indexes, built through [`KgBuilder`];
//! - [`KgPair`]: two KGs plus their reference entity alignment;
//! - [`FoldSplit`] / [`k_fold_splits`]: the paper's 20/10/70 cross-validation
//!   protocol;
//! - [`DegreeDistribution`] / [`KgStats`]: the statistics behind Tables 2–3
//!   and Figures 2–3;
//! - [`io`]: the OpenEA on-disk dataset format.

pub mod error;
pub mod ids;
pub mod interner;
pub mod io;
pub mod kg;
pub mod pair;
pub mod stats;

pub use error::{Error, Result};
pub use ids::{AttrTriple, AttributeId, EntityId, LiteralId, RelTriple, RelationId};
pub use interner::Interner;
pub use kg::{KgBuilder, KnowledgeGraph};
pub use pair::{k_fold_splits, AlignedPair, FoldSplit, KgPair};
pub use stats::{DegreeDistribution, KgStats};
