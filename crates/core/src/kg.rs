//! The knowledge-graph data model.
//!
//! A [`KnowledgeGraph`] stores relation triples *(head, relation, tail)* and
//! attribute triples *(entity, attribute, literal)* over interned symbols,
//! together with adjacency indexes used by the embedding, sampling and
//! conventional-alignment code. Graphs are immutable once built; construction
//! goes through [`KgBuilder`], and sampling produces new graphs via
//! [`KnowledgeGraph::induced_subgraph`].

use crate::ids::{AttrTriple, AttributeId, EntityId, LiteralId, RelTriple, RelationId};
use crate::interner::Interner;
use std::collections::HashSet;

/// An immutable knowledge graph with adjacency indexes.
#[derive(Clone, Debug)]
pub struct KnowledgeGraph {
    name: String,
    entities: Interner,
    relations: Interner,
    attributes: Interner,
    literals: Interner,
    rel_triples: Vec<RelTriple>,
    attr_triples: Vec<AttrTriple>,
    /// Per entity: outgoing `(relation, tail)` pairs.
    out_edges: Vec<Vec<(RelationId, EntityId)>>,
    /// Per entity: incoming `(relation, head)` pairs.
    in_edges: Vec<Vec<(RelationId, EntityId)>>,
    /// Per entity: `(attribute, literal)` pairs.
    attrs: Vec<Vec<(AttributeId, LiteralId)>>,
}

impl KnowledgeGraph {
    /// The human-readable name of this KG (e.g. `"EN"`, `"DBpedia"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    pub fn num_literals(&self) -> usize {
        self.literals.len()
    }

    pub fn num_rel_triples(&self) -> usize {
        self.rel_triples.len()
    }

    pub fn num_attr_triples(&self) -> usize {
        self.attr_triples.len()
    }

    pub fn rel_triples(&self) -> &[RelTriple] {
        &self.rel_triples
    }

    pub fn attr_triples(&self) -> &[AttrTriple] {
        &self.attr_triples
    }

    /// Outgoing `(relation, tail)` edges of `e`.
    #[inline]
    pub fn out_edges(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.out_edges[e.idx()]
    }

    /// Incoming `(relation, head)` edges of `e`.
    #[inline]
    pub fn in_edges(&self, e: EntityId) -> &[(RelationId, EntityId)] {
        &self.in_edges[e.idx()]
    }

    /// `(attribute, literal)` pairs of `e`.
    #[inline]
    pub fn attrs_of(&self, e: EntityId) -> &[(AttributeId, LiteralId)] {
        &self.attrs[e.idx()]
    }

    /// The relational degree of `e`: the number of relation triples in which
    /// `e` participates as head or tail. This matches the paper's definition
    /// (average degree = 2·|triples| / |entities|).
    #[inline]
    pub fn degree(&self, e: EntityId) -> usize {
        self.out_edges[e.idx()].len() + self.in_edges[e.idx()].len()
    }

    /// Relational degree of every entity, indexed by entity id.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_entities())
            .map(|i| self.degree(EntityId::from_idx(i)))
            .collect()
    }

    /// Average relational degree (`2·|rel triples| / |entities|`).
    pub fn avg_degree(&self) -> f64 {
        if self.num_entities() == 0 {
            return 0.0;
        }
        2.0 * self.num_rel_triples() as f64 / self.num_entities() as f64
    }

    /// Number of entities with no relation triple at all.
    pub fn num_isolated(&self) -> usize {
        (0..self.num_entities())
            .filter(|&i| self.degree(EntityId::from_idx(i)) == 0)
            .count()
    }

    /// Iterates over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> {
        (0..self.num_entities()).map(EntityId::from_idx)
    }

    pub fn entity_name(&self, e: EntityId) -> &str {
        self.entities.resolve(e.0)
    }

    pub fn relation_name(&self, r: RelationId) -> &str {
        self.relations.resolve(r.0)
    }

    pub fn attribute_name(&self, a: AttributeId) -> &str {
        self.attributes.resolve(a.0)
    }

    pub fn literal_value(&self, l: LiteralId) -> &str {
        self.literals.resolve(l.0)
    }

    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entities.get(name).map(EntityId)
    }

    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations.get(name).map(RelationId)
    }

    pub fn attribute_by_name(&self, name: &str) -> Option<AttributeId> {
        self.attributes.get(name).map(AttributeId)
    }

    /// Distinct undirected relational neighbours of `e` (no self-loops).
    pub fn neighbors(&self, e: EntityId) -> Vec<EntityId> {
        let mut seen = HashSet::with_capacity(self.degree(e));
        let mut out = Vec::with_capacity(self.degree(e));
        for &(_, t) in self.out_edges(e) {
            if t != e && seen.insert(t) {
                out.push(t);
            }
        }
        for &(_, h) in self.in_edges(e) {
            if h != e && seen.insert(h) {
                out.push(h);
            }
        }
        out
    }

    /// Builds the induced subgraph over `keep`, re-interning symbols densely.
    ///
    /// Relation triples survive iff both endpoints are kept; attribute triples
    /// survive iff their entity is kept. Relations, attributes and literals
    /// that no longer occur are dropped. Returns the new graph plus the
    /// old-entity-id → new-entity-id map (`None` for removed entities).
    pub fn induced_subgraph(
        &self,
        keep: &HashSet<EntityId>,
    ) -> (KnowledgeGraph, Vec<Option<EntityId>>) {
        let mut builder = KgBuilder::new(&self.name);
        // Keep entity ordering stable so repeated sampling is deterministic.
        let mut map: Vec<Option<EntityId>> = vec![None; self.num_entities()];
        #[allow(clippy::needless_range_loop)] // multi-array indexed math reads clearer
        for i in 0..self.num_entities() {
            let old = EntityId::from_idx(i);
            if keep.contains(&old) {
                let new = builder.add_entity(self.entity_name(old));
                map[i] = Some(new);
            }
        }
        for t in &self.rel_triples {
            if let (Some(h), Some(tl)) = (map[t.head.idx()], map[t.tail.idx()]) {
                let r = builder.add_relation(self.relation_name(t.rel));
                builder.add_rel_triple_ids(h, r, tl);
            }
        }
        for t in &self.attr_triples {
            if let Some(e) = map[t.entity.idx()] {
                let a = builder.add_attribute(self.attribute_name(t.attr));
                let v = builder.add_literal(self.literal_value(t.value));
                builder.add_attr_triple_ids(e, a, v);
            }
        }
        (builder.build(), map)
    }
}

/// Mutable builder for [`KnowledgeGraph`]. Triples are deduplicated at
/// [`KgBuilder::build`] time.
#[derive(Clone, Debug, Default)]
pub struct KgBuilder {
    name: String,
    entities: Interner,
    relations: Interner,
    attributes: Interner,
    literals: Interner,
    rel_triples: Vec<RelTriple>,
    attr_triples: Vec<AttrTriple>,
}

impl KgBuilder {
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            ..Self::default()
        }
    }

    /// Interns an entity by name, registering it even if it has no triples.
    pub fn add_entity(&mut self, name: &str) -> EntityId {
        EntityId(self.entities.intern(name))
    }

    pub fn add_relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    pub fn add_attribute(&mut self, name: &str) -> AttributeId {
        AttributeId(self.attributes.intern(name))
    }

    pub fn add_literal(&mut self, value: &str) -> LiteralId {
        LiteralId(self.literals.intern(value))
    }

    /// Adds a relation triple by symbol names.
    pub fn add_rel_triple(&mut self, head: &str, rel: &str, tail: &str) {
        let h = self.add_entity(head);
        let r = self.add_relation(rel);
        let t = self.add_entity(tail);
        self.add_rel_triple_ids(h, r, t);
    }

    /// Adds a relation triple by pre-interned ids.
    pub fn add_rel_triple_ids(&mut self, head: EntityId, rel: RelationId, tail: EntityId) {
        debug_assert!(head.idx() < self.entities.len());
        debug_assert!(rel.idx() < self.relations.len());
        debug_assert!(tail.idx() < self.entities.len());
        self.rel_triples.push(RelTriple::new(head, rel, tail));
    }

    /// Adds an attribute triple by symbol names.
    pub fn add_attr_triple(&mut self, entity: &str, attr: &str, value: &str) {
        let e = self.add_entity(entity);
        let a = self.add_attribute(attr);
        let v = self.add_literal(value);
        self.add_attr_triple_ids(e, a, v);
    }

    /// Adds an attribute triple by pre-interned ids.
    pub fn add_attr_triple_ids(&mut self, entity: EntityId, attr: AttributeId, value: LiteralId) {
        debug_assert!(entity.idx() < self.entities.len());
        debug_assert!(attr.idx() < self.attributes.len());
        debug_assert!(value.idx() < self.literals.len());
        self.attr_triples.push(AttrTriple::new(entity, attr, value));
    }

    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Finalizes the graph: deduplicates triples and builds adjacency indexes.
    pub fn build(mut self) -> KnowledgeGraph {
        self.rel_triples.sort_unstable();
        self.rel_triples.dedup();
        self.attr_triples.sort_unstable();
        self.attr_triples.dedup();

        let n = self.entities.len();
        let mut out_edges: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); n];
        let mut in_edges: Vec<Vec<(RelationId, EntityId)>> = vec![Vec::new(); n];
        let mut attrs: Vec<Vec<(AttributeId, LiteralId)>> = vec![Vec::new(); n];
        for t in &self.rel_triples {
            out_edges[t.head.idx()].push((t.rel, t.tail));
            in_edges[t.tail.idx()].push((t.rel, t.head));
        }
        for t in &self.attr_triples {
            attrs[t.entity.idx()].push((t.attr, t.value));
        }

        KnowledgeGraph {
            name: self.name,
            entities: self.entities,
            relations: self.relations,
            attributes: self.attributes,
            literals: self.literals,
            rel_triples: self.rel_triples,
            attr_triples: self.attr_triples,
            out_edges,
            in_edges,
            attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        let mut b = KgBuilder::new("toy");
        b.add_rel_triple("a", "r1", "b");
        b.add_rel_triple("b", "r2", "c");
        b.add_rel_triple("a", "r1", "c");
        b.add_rel_triple("a", "r1", "b"); // duplicate
        b.add_attr_triple("a", "name", "Alpha");
        b.add_attr_triple("c", "name", "Gamma");
        b.build()
    }

    #[test]
    fn builder_dedups_and_counts() {
        let kg = toy();
        assert_eq!(kg.num_entities(), 3);
        assert_eq!(kg.num_relations(), 2);
        assert_eq!(kg.num_rel_triples(), 3);
        assert_eq!(kg.num_attr_triples(), 2);
        assert_eq!(kg.num_attributes(), 1);
        assert_eq!(kg.num_literals(), 2);
    }

    #[test]
    fn degrees_match_definition() {
        let kg = toy();
        let a = kg.entity_by_name("a").unwrap();
        let b = kg.entity_by_name("b").unwrap();
        let c = kg.entity_by_name("c").unwrap();
        assert_eq!(kg.degree(a), 2); // a->b, a->c
        assert_eq!(kg.degree(b), 2); // a->b, b->c
        assert_eq!(kg.degree(c), 2); // b->c, a->c
        let expected = 2.0 * 3.0 / 3.0;
        assert!((kg.avg_degree() - expected).abs() < 1e-12);
        assert_eq!(kg.num_isolated(), 0);
    }

    #[test]
    fn neighbors_are_undirected_and_distinct() {
        let kg = toy();
        let a = kg.entity_by_name("a").unwrap();
        let mut n = kg.neighbors(a);
        n.sort();
        assert_eq!(
            n,
            vec![
                kg.entity_by_name("b").unwrap(),
                kg.entity_by_name("c").unwrap()
            ]
        );
    }

    #[test]
    fn isolated_entity_is_counted() {
        let mut b = KgBuilder::new("iso");
        b.add_rel_triple("a", "r", "b");
        b.add_entity("lonely");
        let kg = b.build();
        assert_eq!(kg.num_entities(), 3);
        assert_eq!(kg.num_isolated(), 1);
    }

    #[test]
    fn induced_subgraph_drops_dangling_triples() {
        let kg = toy();
        let keep: HashSet<EntityId> = ["a", "b"]
            .iter()
            .map(|n| kg.entity_by_name(n).unwrap())
            .collect();
        let (sub, map) = kg.induced_subgraph(&keep);
        assert_eq!(sub.num_entities(), 2);
        assert_eq!(sub.num_rel_triples(), 1); // only a->b survives
        assert_eq!(sub.num_attr_triples(), 1); // only a's attr survives
        assert_eq!(sub.num_relations(), 1); // r2 vanished
        let c = kg.entity_by_name("c").unwrap();
        assert!(map[c.idx()].is_none());
        let a_old = kg.entity_by_name("a").unwrap();
        let a_new = map[a_old.idx()].unwrap();
        assert_eq!(sub.entity_name(a_new), "a");
    }

    #[test]
    fn induced_subgraph_preserves_names() {
        let kg = toy();
        let keep: HashSet<EntityId> = kg.entity_ids().collect();
        let (sub, _) = kg.induced_subgraph(&keep);
        assert_eq!(sub.num_rel_triples(), kg.num_rel_triples());
        assert_eq!(sub.num_attr_triples(), kg.num_attr_triples());
        for e in kg.entity_ids() {
            assert!(sub.entity_by_name(kg.entity_name(e)).is_some());
        }
    }

    #[test]
    fn attrs_of_returns_pairs() {
        let kg = toy();
        let a = kg.entity_by_name("a").unwrap();
        let attrs = kg.attrs_of(a);
        assert_eq!(attrs.len(), 1);
        assert_eq!(kg.attribute_name(attrs[0].0), "name");
        assert_eq!(kg.literal_value(attrs[0].1), "Alpha");
    }

    #[test]
    fn empty_graph_is_fine() {
        let kg = KgBuilder::new("empty").build();
        assert_eq!(kg.num_entities(), 0);
        assert_eq!(kg.avg_degree(), 0.0);
        assert_eq!(kg.num_isolated(), 0);
    }
}
