//! Geometric and diagnostic analyses of entity embeddings:
//! Figure 5 (recall per alignment-degree bucket), Figure 9 (top-k similarity
//! profile), Figure 10 (hubness and isolation) and Figure 12 (three-system
//! overlap of correct alignment).

use crate::simmat::SimilarityMatrix;
use std::collections::HashSet;

/// Figure 9: mean similarity between each source entity and its k-th nearest
/// target, for k = 1..=k_max. A good approach shows a high first value and a
/// steep drop (discriminative neighbours).
pub fn topk_similarity_profile(sim: &SimilarityMatrix, k_max: usize) -> Vec<f64> {
    let rows = sim.rows();
    if rows == 0 {
        return vec![0.0; k_max];
    }
    let mut sums = vec![0.0f64; k_max];
    let mut counts = vec![0usize; k_max];
    for i in 0..rows {
        for (k, &(_, s)) in sim.topk_row(i, k_max).iter().enumerate() {
            sums[k] += s as f64;
            counts[k] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// Figure 10: how often each target entity appears as somebody's top-1
/// nearest neighbour.
#[derive(Clone, Debug, PartialEq)]
pub struct HubnessProfile {
    /// Fraction of targets never chosen as top-1 ("isolated" under greedy).
    pub zero: f64,
    /// Fraction chosen exactly once (the healthy case).
    pub one: f64,
    /// Fraction chosen 2–4 times (mild hubs).
    pub two_to_four: f64,
    /// Fraction chosen ≥5 times (strong hubs).
    pub five_plus: f64,
}

/// Computes the hubness/isolation profile of greedy top-1 matching.
pub fn hubness_profile(sim: &SimilarityMatrix) -> HubnessProfile {
    let cols = sim.cols();
    if cols == 0 {
        return HubnessProfile {
            zero: 0.0,
            one: 0.0,
            two_to_four: 0.0,
            five_plus: 0.0,
        };
    }
    let mut counts = vec![0usize; cols];
    for i in 0..sim.rows() {
        if let Some(j) = sim.argmax_row(i) {
            counts[j] += 1;
        }
    }
    let n = cols as f64;
    let frac =
        |pred: &dyn Fn(usize) -> bool| counts.iter().filter(|&&c| pred(c)).count() as f64 / n;
    HubnessProfile {
        zero: frac(&|c| c == 0),
        one: frac(&|c| c == 1),
        two_to_four: frac(&|c| (2..=4).contains(&c)),
        five_plus: frac(&|c| c >= 5),
    }
}

/// Figure 5: recall within alignment-degree buckets. `degrees[i]` is the
/// alignment degree of test pair `i`, `correct[i]` whether the approach got
/// it right, and `edges` the bucket boundaries (e.g. `[1, 6, 11, 16]` for the
/// paper's `[1,6) [6,11) [11,16) [16,∞)`). Returns `(bucket_size, recall)`
/// per bucket.
pub fn degree_bucket_recall(
    degrees: &[usize],
    correct: &[bool],
    edges: &[usize],
) -> Vec<(usize, f64)> {
    assert_eq!(degrees.len(), correct.len());
    assert!(!edges.is_empty());
    let mut sizes = vec![0usize; edges.len()];
    let mut hits = vec![0usize; edges.len()];
    for (&d, &c) in degrees.iter().zip(correct) {
        // Find the last edge ≤ d; degrees below the first edge join bucket 0.
        let b = edges.iter().rposition(|&e| d >= e).unwrap_or(0);
        sizes[b] += 1;
        if c {
            hits[b] += 1;
        }
    }
    sizes
        .into_iter()
        .zip(hits)
        .map(|(n, h)| (n, if n == 0 { 0.0 } else { h as f64 / n as f64 }))
        .collect()
}

/// Figure 12: the 8-region breakdown of which of three systems found each
/// gold alignment pair. Fractions are over the gold set and sum to 1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OverlapBreakdown {
    pub only_a: f64,
    pub only_b: f64,
    pub only_c: f64,
    pub a_and_b: f64,
    pub a_and_c: f64,
    pub b_and_c: f64,
    pub all_three: f64,
    pub none: f64,
}

/// Computes the overlap breakdown of three systems' *correct* predictions
/// over the gold alignment.
pub fn overlap3(
    gold: &[(u32, u32)],
    found_a: &HashSet<(u32, u32)>,
    found_b: &HashSet<(u32, u32)>,
    found_c: &HashSet<(u32, u32)>,
) -> OverlapBreakdown {
    let mut out = OverlapBreakdown::default();
    if gold.is_empty() {
        return out;
    }
    let unit = 1.0 / gold.len() as f64;
    for p in gold {
        let (a, b, c) = (
            found_a.contains(p),
            found_b.contains(p),
            found_c.contains(p),
        );
        match (a, b, c) {
            (true, false, false) => out.only_a += unit,
            (false, true, false) => out.only_b += unit,
            (false, false, true) => out.only_c += unit,
            (true, true, false) => out.a_and_b += unit,
            (true, false, true) => out.a_and_c += unit,
            (false, true, true) => out.b_and_c += unit,
            (true, true, true) => out.all_three += unit,
            (false, false, false) => out.none += unit,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_profile_is_descending() {
        let sim = SimilarityMatrix::from_raw(2, 4, vec![0.9, 0.3, 0.5, 0.1, 0.2, 0.8, 0.6, 0.4]);
        let prof = topk_similarity_profile(&sim, 3);
        assert_eq!(prof.len(), 3);
        assert!(prof[0] >= prof[1] && prof[1] >= prof[2]);
        assert!((prof[0] - (0.9 + 0.8) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn hubness_counts_regions() {
        // 4 sources all pick target 0; targets 1..3 never picked.
        let sim = SimilarityMatrix::from_raw(
            4,
            4,
            vec![
                0.9, 0.1, 0.1, 0.1, //
                0.9, 0.1, 0.1, 0.1, //
                0.9, 0.1, 0.1, 0.1, //
                0.9, 0.1, 0.1, 0.1,
            ],
        );
        let h = hubness_profile(&sim);
        assert!((h.zero - 0.75).abs() < 1e-12);
        assert_eq!(h.one, 0.0);
        assert!((h.two_to_four - 0.25).abs() < 1e-12);
        assert_eq!(h.five_plus, 0.0);
    }

    #[test]
    fn hubness_ideal_case() {
        let sim =
            SimilarityMatrix::from_raw(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let h = hubness_profile(&sim);
        assert_eq!(h.one, 1.0);
        assert_eq!(h.zero, 0.0);
    }

    #[test]
    fn degree_buckets_match_paper_edges() {
        let degrees = [1, 3, 7, 12, 30];
        let correct = [false, true, true, false, true];
        let res = degree_bucket_recall(&degrees, &correct, &[1, 6, 11, 16]);
        assert_eq!(res.len(), 4);
        assert_eq!(res[0], (2, 0.5)); // degrees 1, 3
        assert_eq!(res[1], (1, 1.0)); // degree 7
        assert_eq!(res[2], (1, 0.0)); // degree 12
        assert_eq!(res[3], (1, 1.0)); // degree 30
    }

    #[test]
    fn overlap_regions_sum_to_one() {
        let gold: Vec<(u32, u32)> = (0..10).map(|i| (i, i)).collect();
        let a: HashSet<_> = gold[0..6].iter().copied().collect();
        let b: HashSet<_> = gold[4..8].iter().copied().collect();
        let c: HashSet<_> = gold[5..10].iter().copied().collect();
        let o = overlap3(&gold, &a, &b, &c);
        let total = o.only_a
            + o.only_b
            + o.only_c
            + o.a_and_b
            + o.a_and_c
            + o.b_and_c
            + o.all_three
            + o.none;
        assert!((total - 1.0).abs() < 1e-9);
        assert!((o.all_three - 0.1).abs() < 1e-9); // a∩b∩c = {5}
    }

    #[test]
    fn overlap_exact_regions() {
        let gold: Vec<(u32, u32)> = (0..4).map(|i| (i, i)).collect();
        let a: HashSet<_> = [(0u32, 0u32), (1, 1)].into();
        let b: HashSet<_> = [(1u32, 1u32), (2, 2)].into();
        let c: HashSet<_> = HashSet::new();
        let o = overlap3(&gold, &a, &b, &c);
        assert!((o.only_a - 0.25).abs() < 1e-12);
        assert!((o.only_b - 0.25).abs() < 1e-12);
        assert!((o.a_and_b - 0.25).abs() < 1e-12);
        assert!((o.none - 0.25).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    props! {
        /// The top-k similarity profile is non-increasing in k.
        #[test]
        fn similarity_profile_is_monotone(values in vec_of(-1.0f32..1.0, 24)) {
            let sim = SimilarityMatrix::from_raw(4, 6, values);
            let prof = topk_similarity_profile(&sim, 5);
            for w in prof.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-6);
            }
        }

        /// Hubness fractions always partition the target set.
        #[test]
        fn hubness_fractions_sum_to_one(values in vec_of(-1.0f32..1.0, 30)) {
            let sim = SimilarityMatrix::from_raw(5, 6, values);
            let h = hubness_profile(&sim);
            let total = h.zero + h.one + h.two_to_four + h.five_plus;
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        /// Degree buckets partition the test pairs.
        #[test]
        fn degree_buckets_partition(
            degrees in vec_of(0usize..40, 1..60),
            flips in vec_of(any_bool(), 60),
        ) {
            let correct: Vec<bool> = degrees.iter().enumerate().map(|(i, _)| flips[i % flips.len()]).collect();
            let buckets = degree_bucket_recall(&degrees, &correct, &[1, 6, 11, 16]);
            let total: usize = buckets.iter().map(|&(n, _)| n).sum();
            prop_assert_eq!(total, degrees.len());
            for &(n, r) in &buckets {
                prop_assert!((0.0..=1.0).contains(&r) || n == 0);
            }
        }
    }
}
