//! Distance metrics, expressed as similarities (higher = more alike) so that
//! every inference strategy can maximize uniformly.

use openea_math::vecops;

/// The distance metrics used across the 23 surveyed approaches (Table 1),
/// as similarity functions, plus the raw inner product (the un-normalized
/// score several neural approaches rank by).
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum Metric {
    /// Cosine similarity. Defined as 0 when either vector is zero (a zero
    /// embedding has no direction; returning NaN here would silently poison
    /// Hits@k downstream).
    Cosine,
    /// Raw inner product (dot product).
    Inner,
    /// Negated Euclidean distance.
    Euclidean,
    /// Negated Manhattan distance.
    Manhattan,
}

impl Metric {
    /// Every metric, in a fixed order — for test matrices and benches.
    pub const ALL: [Metric; 4] = [
        Metric::Cosine,
        Metric::Inner,
        Metric::Euclidean,
        Metric::Manhattan,
    ];

    /// Similarity between two vectors; higher means more similar.
    #[inline]
    pub fn similarity(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Cosine => vecops::cosine(a, b),
            Metric::Inner => vecops::dot(a, b),
            Metric::Euclidean => -vecops::euclidean(a, b),
            Metric::Manhattan => -vecops::manhattan(a, b),
        }
    }

    /// Whether the tiled kernels need precomputed row norms for this metric.
    #[inline]
    pub fn needs_norms(self) -> bool {
        matches!(self, Metric::Cosine)
    }

    /// Per-row L2 norms of a row-major `n × dim` buffer when this metric
    /// needs them ([`Metric::needs_norms`]); empty otherwise.
    pub fn row_norms(self, data: &[f32], dim: usize) -> Vec<f32> {
        if self.needs_norms() {
            vecops::row_norms(data, dim)
        } else {
            Vec::new()
        }
    }

    /// Similarities of one source row `a` against a contiguous row-major
    /// `tile` of target rows, written to `out` (one value per tile row).
    ///
    /// `a_norm`/`tile_norms` are the precomputed norms from
    /// [`Metric::row_norms`] and are only read for norm-using metrics. Each
    /// output is bit-identical to [`Metric::similarity`] on the same pair —
    /// the per-pair accumulation order never changes.
    #[inline]
    pub fn similarity_block(
        self,
        a: &[f32],
        a_norm: f32,
        tile: &[f32],
        tile_norms: &[f32],
        dim: usize,
        out: &mut [f32],
    ) {
        match self {
            Metric::Cosine => vecops::cosine_block(a, a_norm, tile, tile_norms, dim, out),
            Metric::Inner => vecops::inner_block(a, tile, dim, out),
            Metric::Euclidean => vecops::neg_euclidean_block(a, tile, dim, out),
            Metric::Manhattan => vecops::neg_manhattan_block(a, tile, dim, out),
        }
    }

    /// [`Metric::similarity_block`] over a *dimension-major* tile produced
    /// by [`vecops::transpose_tile`] — the hot-loop variant: the caller
    /// transposes each tile once per chunk and every source row then runs a
    /// contiguous SIMD sweep over independent columns. Output bits are
    /// identical to the row-major path.
    #[inline]
    pub fn similarity_block_t(
        self,
        a: &[f32],
        a_norm: f32,
        tile_t: &[f32],
        tile_norms: &[f32],
        out: &mut [f32],
    ) {
        match self {
            Metric::Cosine => vecops::cosine_block_t(a, a_norm, tile_t, tile_norms, out),
            Metric::Inner => vecops::inner_block_t(a, tile_t, out),
            Metric::Euclidean => vecops::neg_euclidean_block_t(a, tile_t, out),
            Metric::Manhattan => vecops::neg_manhattan_block_t(a, tile_t, out),
        }
    }

    /// [`Metric::similarity_block_t`] for [`vecops::PANEL`] source rows at
    /// once (`a` is row-major `PANEL × dim`): the register-panel microkernel
    /// amortizes each tile lane load over the four rows. Every output row is
    /// bit-identical to the single-row `_t` dispatch, so callers can mix
    /// panel and single-row sweeps freely.
    #[inline]
    pub fn similarity_panel_t(
        self,
        a: &[f32],
        dim: usize,
        a_norms: [f32; vecops::PANEL],
        tile_t: &[f32],
        tile_norms: &[f32],
        out: [&mut [f32]; vecops::PANEL],
    ) {
        match self {
            Metric::Cosine => vecops::cosine_panel_t(a, dim, a_norms, tile_t, tile_norms, out),
            Metric::Inner => vecops::inner_panel_t(a, dim, tile_t, out),
            Metric::Euclidean => vecops::neg_euclidean_panel_t(a, dim, tile_t, out),
            Metric::Manhattan => vecops::neg_manhattan_panel_t(a, dim, tile_t, out),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::Inner => "inner",
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_maximize_each_metric() {
        let v = [0.5f32, -1.0, 2.0];
        let w = [0.4f32, -0.9, 1.5];
        for m in [Metric::Cosine, Metric::Euclidean, Metric::Manhattan] {
            assert!(
                m.similarity(&v, &v) >= m.similarity(&v, &w),
                "{}",
                m.label()
            );
        }
    }

    #[test]
    fn euclidean_and_manhattan_are_nonpositive() {
        let v = [1.0f32, 2.0];
        let w = [3.0f32, 0.0];
        assert!(Metric::Euclidean.similarity(&v, &w) < 0.0);
        assert!(Metric::Manhattan.similarity(&v, &w) < 0.0);
        assert_eq!(Metric::Euclidean.similarity(&v, &v), 0.0);
    }

    #[test]
    fn cosine_ignores_scale() {
        let v = [1.0f32, 2.0, 3.0];
        let w = [2.0f32, 4.0, 6.0];
        assert!((Metric::Cosine.similarity(&v, &w) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inner_is_the_raw_dot_product() {
        let v = [1.0f32, 2.0, 3.0];
        let w = [2.0f32, -1.0, 0.5];
        assert_eq!(Metric::Inner.similarity(&v, &w), 2.0 - 2.0 + 1.5);
    }

    /// Regression: cosine on a zero vector is 0.0, never NaN — a NaN here
    /// would propagate through the similarity matrix into Hits@k.
    #[test]
    fn cosine_of_zero_vector_is_zero_not_nan() {
        let zero = [0.0f32, 0.0, 0.0];
        let v = [1.0f32, -2.0, 0.5];
        assert_eq!(Metric::Cosine.similarity(&zero, &v), 0.0);
        assert_eq!(Metric::Cosine.similarity(&v, &zero), 0.0);
        assert_eq!(Metric::Cosine.similarity(&zero, &zero), 0.0);
        // And the block kernel agrees.
        let norms = Metric::Cosine.row_norms(&zero, 3);
        let mut out = [f32::NAN];
        Metric::Cosine.similarity_block(&v, vecops::norm2(&v), &zero, &norms, 3, &mut out);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn all_lists_every_metric_once() {
        assert_eq!(Metric::ALL.len(), 4);
        for (i, a) in Metric::ALL.iter().enumerate() {
            for b in &Metric::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn block_dispatch_matches_similarity() {
        let a = [0.3f32, -0.7, 1.1, 0.0];
        let tile: Vec<f32> = (0..3 * 4).map(|x| ((x * 7 % 5) as f32) - 2.0).collect();
        for m in Metric::ALL {
            let tile_norms = m.row_norms(&tile, 4);
            let a_norm = if m.needs_norms() {
                vecops::norm2(&a)
            } else {
                0.0
            };
            let mut out = [0.0f32; 3];
            m.similarity_block(&a, a_norm, &tile, &tile_norms, 4, &mut out);
            for (j, b) in tile.chunks_exact(4).enumerate() {
                assert_eq!(out[j], m.similarity(&a, b), "{} col {j}", m.label());
            }
            // The transposed dispatch produces the same bits.
            let mut tile_t = Vec::new();
            vecops::transpose_tile(&tile, 4, &mut tile_t);
            let mut out_t = [0.0f32; 3];
            m.similarity_block_t(&a, a_norm, &tile_t, &tile_norms, &mut out_t);
            for j in 0..3 {
                assert_eq!(out_t[j].to_bits(), out[j].to_bits(), "{}", m.label());
            }
        }
    }
}
