//! Distance metrics, expressed as similarities (higher = more alike) so that
//! every inference strategy can maximize uniformly.

use openea_math::vecops;

/// The three distance metrics used across the 23 surveyed approaches
/// (Table 1), as similarity functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Cosine similarity.
    Cosine,
    /// Negated Euclidean distance.
    Euclidean,
    /// Negated Manhattan distance.
    Manhattan,
}

impl Metric {
    /// Similarity between two vectors; higher means more similar.
    #[inline]
    pub fn similarity(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Cosine => vecops::cosine(a, b),
            Metric::Euclidean => -vecops::euclidean(a, b),
            Metric::Manhattan => -vecops::manhattan(a, b),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Metric::Cosine => "cosine",
            Metric::Euclidean => "euclidean",
            Metric::Manhattan => "manhattan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_maximize_each_metric() {
        let v = [0.5f32, -1.0, 2.0];
        let w = [0.4f32, -0.9, 1.5];
        for m in [Metric::Cosine, Metric::Euclidean, Metric::Manhattan] {
            assert!(
                m.similarity(&v, &v) >= m.similarity(&v, &w),
                "{}",
                m.label()
            );
        }
    }

    #[test]
    fn euclidean_and_manhattan_are_nonpositive() {
        let v = [1.0f32, 2.0];
        let w = [3.0f32, 0.0];
        assert!(Metric::Euclidean.similarity(&v, &w) < 0.0);
        assert!(Metric::Manhattan.similarity(&v, &w) < 0.0);
        assert_eq!(Metric::Euclidean.similarity(&v, &v), 0.0);
    }

    #[test]
    fn cosine_ignores_scale() {
        let v = [1.0f32, 2.0, 3.0];
        let w = [2.0f32, 4.0, 6.0];
        assert!((Metric::Cosine.similarity(&v, &w) - 1.0).abs() < 1e-6);
    }
}
