//! Alignment-inference strategies (paper Sect. 2.2.2 and Table 6).
//!
//! * [`greedy_match`] — independent nearest-neighbour per source (what every
//!   surveyed approach uses);
//! * [`stable_marriage`] — Gale–Shapley: no source/target pair prefers each
//!   other over their assigned partners;
//! * [`hungarian`] — Kuhn–Munkres maximum-weight matching, the O(N³)
//!   collective-search optimum;
//! * [`greedy_collective`] — the linear-ish heuristic: sort candidate pairs
//!   by similarity, accept greedily under the 1-to-1 constraint.

use crate::simmat::SimilarityMatrix;
use crate::topk::TopKMatrix;

/// Greedy nearest-neighbour: each source independently picks its most
/// similar target (targets may be reused). Returns `match[i] = j`.
pub fn greedy_match(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    (0..sim.rows()).map(|i| sim.argmax_row(i)).collect()
}

/// [`greedy_match`] over streamed top-k lists — never needs the full matrix.
/// Identical to the dense result (both resolve ties toward the lowest
/// target index).
pub fn greedy_match_topk(topk: &TopKMatrix) -> Vec<Option<usize>> {
    (0..topk.rows())
        .map(|i| topk.best(i).map(|(j, _)| j))
        .collect()
}

/// Gale–Shapley stable marriage with sources proposing. All similarities
/// act as preferences; every source is matched when `rows <= cols`. Equal
/// preferences resolve toward the lower target index, and a target keeps its
/// current partner unless the new proposal is strictly better.
pub fn stable_marriage(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    let rows = sim.rows();
    let cols = sim.cols();
    // Preference lists: targets sorted by descending similarity per source,
    // ties toward the lower index (the kernel layer's shared tie rule).
    let prefs: Vec<Vec<usize>> = (0..rows)
        .map(|i| {
            let row = sim.row(i);
            let mut idx: Vec<usize> = (0..cols).collect();
            idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite").then(a.cmp(&b)));
            idx
        })
        .collect();
    let mut next_proposal = vec![0usize; rows];
    let mut target_of = vec![None::<usize>; rows];
    let mut source_of = vec![None::<usize>; cols];
    let mut free: Vec<usize> = (0..rows).collect();

    while let Some(i) = free.pop() {
        // Source i proposes down its preference list.
        while next_proposal[i] < cols {
            let j = prefs[i][next_proposal[i]];
            next_proposal[i] += 1;
            match source_of[j] {
                None => {
                    source_of[j] = Some(i);
                    target_of[i] = Some(j);
                    break;
                }
                Some(other) => {
                    if sim.get(i, j) > sim.get(other, j) {
                        // j dumps `other` for i.
                        source_of[j] = Some(i);
                        target_of[i] = Some(j);
                        target_of[other] = None;
                        free.push(other);
                        break;
                    }
                }
            }
        }
    }
    target_of
}

/// [`stable_marriage`] over streamed top-k preference lists: each source only
/// proposes to its `k` best targets (a source whose list runs dry stays
/// unmatched). Rows of a [`TopKMatrix`] are already sorted under the shared
/// tie rule, so with `k ≥ cols` this reproduces the dense result exactly;
/// truncated lists give the usual blocking-approximate variant at
/// O(rows·k) memory.
pub fn stable_marriage_topk(topk: &TopKMatrix) -> Vec<Option<usize>> {
    let rows = topk.rows();
    let cols = topk.cols();
    let mut next_proposal = vec![0usize; rows];
    let mut target_of = vec![None::<usize>; rows];
    // Per target: the currently engaged source and its similarity.
    let mut source_of = vec![None::<(usize, f32)>; cols];
    let mut free: Vec<usize> = (0..rows).collect();

    while let Some(i) = free.pop() {
        let row = topk.row(i);
        while next_proposal[i] < row.len() {
            let (j, s) = row[next_proposal[i]];
            let j = j as usize;
            next_proposal[i] += 1;
            match source_of[j] {
                None => {
                    source_of[j] = Some((i, s));
                    target_of[i] = Some(j);
                    break;
                }
                Some((other, other_s)) => {
                    if s > other_s {
                        source_of[j] = Some((i, s));
                        target_of[i] = Some(j);
                        target_of[other] = None;
                        free.push(other);
                        break;
                    }
                }
            }
        }
    }
    target_of
}

/// Kuhn–Munkres (Hungarian) maximum-weight matching in O(n³). Pads the
/// rectangular matrix with zero-weight dummies; returns `match[i] = j` for
/// real pairs only.
pub fn hungarian(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    let rows = sim.rows();
    let cols = sim.cols();
    if rows == 0 || cols == 0 {
        return vec![None; rows];
    }
    let n = rows.max(cols);
    // Convert to a min-cost problem on an n×n padded matrix.
    let max_sim = (0..rows)
        .flat_map(|i| sim.row(i).iter().copied())
        .fold(f32::NEG_INFINITY, f32::max) as f64;
    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            max_sim - sim.get(i, j) as f64
        } else {
            max_sim // dummy rows/cols: constant cost, never preferred
        }
    };

    // Standard O(n³) Hungarian with potentials (1-based helper arrays).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; rows];
    #[allow(clippy::needless_range_loop)] // multi-array indexed math reads clearer
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= rows && j <= cols {
            result[i - 1] = Some(j - 1);
        }
    }
    result
}

/// Greedy collective heuristic: consider all pairs in descending similarity,
/// accept a pair if both sides are still unmatched. Near-optimal in practice
/// at O(RC log RC).
pub fn greedy_collective(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    let rows = sim.rows();
    let cols = sim.cols();
    let mut pairs: Vec<(f32, u32, u32)> = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        let row = sim.row(i);
        for (j, &s) in row.iter().enumerate() {
            pairs.push((s, i as u32, j as u32));
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let mut used_src = vec![false; rows];
    let mut used_dst = vec![false; cols];
    let mut result = vec![None; rows];
    for (_, i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        if !used_src[i] && !used_dst[j] {
            used_src[i] = true;
            used_dst[j] = true;
            result[i] = Some(j);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: Vec<f32>) -> SimilarityMatrix {
        SimilarityMatrix::from_raw(rows, cols, v)
    }

    #[test]
    fn greedy_allows_conflicts() {
        let m = mat(2, 2, vec![0.9, 0.1, 0.8, 0.2]);
        let g = greedy_match(&m);
        assert_eq!(g, vec![Some(0), Some(0)]); // both pick target 0
    }

    #[test]
    fn stable_marriage_resolves_conflicts() {
        let m = mat(2, 2, vec![0.9, 0.1, 0.8, 0.2]);
        let sm = stable_marriage(&m);
        // Source 0 prefers 0 more strongly; source 1 settles for 1.
        assert_eq!(sm, vec![Some(0), Some(1)]);
    }

    #[test]
    fn stable_marriage_has_no_blocking_pair() {
        let m = mat(3, 3, vec![0.5, 0.9, 0.1, 0.4, 0.8, 0.3, 0.95, 0.2, 0.6]);
        let sm = stable_marriage(&m);
        // Verify stability: no (i, j) both preferring each other over current.
        let matched: Vec<usize> = sm.iter().map(|x| x.unwrap()).collect();
        for i in 0..3 {
            for j in 0..3 {
                if matched[i] == j {
                    continue;
                }
                let i_prefers_j = m.get(i, j) > m.get(i, matched[i]);
                let owner = matched.iter().position(|&x| x == j);
                let j_prefers_i = owner.is_none_or(|o| m.get(i, j) > m.get(o, j));
                assert!(!(i_prefers_j && j_prefers_i), "blocking pair ({i},{j})");
            }
        }
    }

    #[test]
    fn hungarian_finds_max_weight_assignment() {
        // Greedy (per-row) picks (0→0, 1→0 conflict); optimum pairs 0→1, 1→0.
        let m = mat(2, 2, vec![0.9, 0.8, 0.9, 0.1]);
        let h = hungarian(&m);
        assert_eq!(h, vec![Some(1), Some(0)]); // total 1.7 > alternatives
    }

    #[test]
    fn hungarian_identity_on_diagonal_dominant() {
        let m = mat(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(hungarian(&m), vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn hungarian_handles_rectangular() {
        let m = mat(2, 3, vec![0.1, 0.9, 0.2, 0.8, 0.7, 0.3]);
        let h = hungarian(&m);
        assert_eq!(h, vec![Some(1), Some(0)]);
        // More sources than targets: one source stays unmatched.
        let m = mat(3, 2, vec![0.9, 0.1, 0.8, 0.7, 0.85, 0.2]);
        let h = hungarian(&m);
        let matched: Vec<_> = h.iter().flatten().collect();
        assert_eq!(matched.len(), 2);
        let set: std::collections::HashSet<_> = matched.iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn greedy_collective_respects_one_to_one() {
        let m = mat(2, 2, vec![0.9, 0.8, 0.85, 0.1]);
        let gc = greedy_collective(&m);
        // Highest pair (0,0)=0.9 taken, then (1,?) only 1 left.
        assert_eq!(gc, vec![Some(0), Some(1)]);
    }

    #[test]
    fn all_strategies_agree_on_unambiguous_input() {
        let m = mat(3, 3, vec![0.9, 0.0, 0.1, 0.0, 0.8, 0.1, 0.1, 0.0, 0.9]);
        let expect = vec![Some(0), Some(1), Some(2)];
        assert_eq!(greedy_match(&m), expect);
        assert_eq!(stable_marriage(&m), expect);
        assert_eq!(hungarian(&m), expect);
        assert_eq!(greedy_collective(&m), expect);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let m = mat(0, 0, vec![]);
        assert!(greedy_match(&m).is_empty());
        assert!(stable_marriage(&m).is_empty());
        assert!(hungarian(&m).is_empty());
        assert!(greedy_collective(&m).is_empty());
        let t = TopKMatrix::from_matrix(&m, 3);
        assert!(greedy_match_topk(&t).is_empty());
        assert!(stable_marriage_topk(&t).is_empty());
    }

    #[test]
    fn topk_greedy_equals_dense_greedy() {
        let m = mat(
            3,
            4,
            vec![0.1, 0.9, 0.9, 0.2, 0.5, 0.5, 0.5, 0.5, 0.0, 0.1, 0.2, 0.3],
        );
        let t = TopKMatrix::from_matrix(&m, 1);
        assert_eq!(greedy_match_topk(&t), greedy_match(&m));
    }

    #[test]
    fn topk_stable_marriage_with_full_k_equals_dense() {
        let m = mat(3, 3, vec![0.5, 0.9, 0.1, 0.4, 0.8, 0.3, 0.95, 0.2, 0.6]);
        let t = TopKMatrix::from_matrix(&m, 3);
        assert_eq!(stable_marriage_topk(&t), stable_marriage(&m));
    }

    #[test]
    fn topk_stable_marriage_truncated_list_leaves_source_unmatched() {
        // Both sources only want target 0; with k=1 the loser has nowhere
        // else to propose.
        let m = mat(2, 2, vec![0.9, 0.1, 0.8, 0.2]);
        let t = TopKMatrix::from_matrix(&m, 1);
        assert_eq!(stable_marriage_topk(&t), vec![Some(0), None]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    fn matching_weight(sim: &SimilarityMatrix, m: &[Option<usize>]) -> f64 {
        m.iter()
            .enumerate()
            .filter_map(|(i, &j)| j.map(|j| sim.get(i, j) as f64))
            .sum()
    }

    props! {
        #![cases = 64]

        /// Hungarian is optimal: at least the weight of the greedy-collective
        /// heuristic on square matrices.
        #[test]
        fn hungarian_weight_dominates_greedy_collective(
            values in vec_of(0.0f32..1.0, 16)
        ) {
            let sim = SimilarityMatrix::from_raw(4, 4, values);
            let h = hungarian(&sim);
            let gc = greedy_collective(&sim);
            prop_assert!(matching_weight(&sim, &h) >= matching_weight(&sim, &gc) - 1e-4);
        }

        /// Stable marriage never leaves a blocking pair.
        #[test]
        fn stable_marriage_has_no_blocking_pair_prop(
            values in vec_of(0.0f32..1.0, 20)
        ) {
            let sim = SimilarityMatrix::from_raw(4, 5, values);
            let sm = stable_marriage(&sim);
            for i in 0..4 {
                for j in 0..5 {
                    let Some(mi) = sm[i] else { continue };
                    if mi == j {
                        continue;
                    }
                    let i_prefers = sim.get(i, j) > sim.get(i, mi);
                    let owner = (0..4).find(|&o| sm[o] == Some(j));
                    let j_prefers = match owner {
                        None => true,
                        Some(o) => sim.get(i, j) > sim.get(o, j),
                    };
                    prop_assert!(!(i_prefers && j_prefers), "blocking pair ({i},{j})");
                }
            }
        }

        /// Every 1-to-1 strategy returns distinct targets.
        #[test]
        fn one_to_one_strategies_have_distinct_targets(
            values in vec_of(0.0f32..1.0, 25)
        ) {
            let sim = SimilarityMatrix::from_raw(5, 5, values);
            for m in [stable_marriage(&sim), hungarian(&sim), greedy_collective(&sim)] {
                let picked: Vec<usize> = m.iter().flatten().copied().collect();
                let set: std::collections::HashSet<_> = picked.iter().collect();
                prop_assert_eq!(set.len(), picked.len());
            }
        }

        /// CSLS preserves matrix shape and finiteness.
        #[test]
        fn csls_is_shape_preserving(values in vec_of(-1.0f32..1.0, 12)) {
            let sim = SimilarityMatrix::from_raw(3, 4, values);
            let c = sim.csls(2);
            prop_assert_eq!(c.rows(), 3);
            prop_assert_eq!(c.cols(), 4);
            for i in 0..3 {
                prop_assert!(c.row(i).iter().all(|x| x.is_finite()));
            }
        }
    }
}
