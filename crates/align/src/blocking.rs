//! Exploratory: **large-scale entity alignment** via blocking (paper
//! Sect. 7.2, third future direction).
//!
//! Computing all pairwise similarities grows quadratically ("the cost would
//! grow polynomially along with the growing number of entities"); the paper
//! points at locality-sensitive hashing to narrow the candidate space. This
//! module implements random-hyperplane LSH (signed random projections,
//! which approximate angular/cosine distance): entities hash into buckets
//! across several tables, and only bucket collisions become candidates.

use crate::metric::Metric;
use crate::simmat::DEFAULT_TILE;
use crate::topk::score_desc;
use openea_runtime::rng::Rng;
use std::cmp::Ordering;

/// Random-hyperplane LSH index over row-major embeddings.
pub struct LshIndex {
    dim: usize,
    /// `tables × bits` hyperplane normals, row-major over `dim`.
    planes: Vec<Vec<f32>>,
    bits: usize,
    tables: usize,
    /// Per table: bucket key → target indices.
    buckets: Vec<std::collections::HashMap<u64, Vec<u32>>>,
}

impl LshIndex {
    /// Builds an index over the `targets` embeddings (`n × dim`).
    pub fn build<R: Rng>(
        targets: &[f32],
        dim: usize,
        bits: usize,
        tables: usize,
        rng: &mut R,
    ) -> Self {
        assert!(dim > 0 && bits > 0 && bits <= 64 && tables > 0);
        assert_eq!(targets.len() % dim, 0);
        let n = targets.len() / dim;
        let planes: Vec<Vec<f32>> = (0..tables * bits)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let mut index = Self {
            dim,
            planes,
            bits,
            tables,
            buckets: vec![std::collections::HashMap::new(); tables],
        };
        for i in 0..n {
            let v = &targets[i * dim..(i + 1) * dim];
            for t in 0..tables {
                let key = index.hash(t, v);
                index.buckets[t].entry(key).or_default().push(i as u32);
            }
        }
        index
    }

    fn hash(&self, table: usize, v: &[f32]) -> u64 {
        let mut key = 0u64;
        for b in 0..self.bits {
            let plane = &self.planes[table * self.bits + b];
            let dot: f32 = plane.iter().zip(v).map(|(p, x)| p * x).sum();
            if dot >= 0.0 {
                key |= 1 << b;
            }
        }
        key
    }

    /// Candidate target indices for a query vector: the union of its bucket
    /// in every table (deduplicated).
    pub fn candidates(&self, query: &[f32]) -> Vec<u32> {
        assert_eq!(query.len(), self.dim);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for t in 0..self.tables {
            let key = self.hash(t, query);
            if let Some(bucket) = self.buckets[t].get(&key) {
                for &i in bucket {
                    if seen.insert(i) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }
}

/// Result of a blocked greedy match.
#[derive(Clone, Debug)]
pub struct BlockedMatch {
    /// Per source: the best candidate target, if any bucket collided.
    pub matches: Vec<Option<u32>>,
    /// Total candidate comparisons performed (vs. `sources × targets` exact).
    pub comparisons: usize,
}

/// Greedy nearest-neighbour search restricted to LSH candidates.
///
/// Candidates are gathered into contiguous tiles and scored with the same
/// block kernels as the dense matrix (bit-identical scores); score ties
/// resolve toward the candidate appearing first in the (deterministic)
/// bucket-union order.
pub fn blocked_greedy_match(
    sources: &[f32],
    targets: &[f32],
    dim: usize,
    metric: Metric,
    index: &LshIndex,
) -> BlockedMatch {
    assert_eq!(sources.len() % dim, 0);
    assert_eq!(targets.len() % dim, 0);
    let n = sources.len() / dim;
    let src_norms = metric.row_norms(sources, dim);
    let dst_norms = metric.row_norms(targets, dim);
    let mut matches = Vec::with_capacity(n);
    let mut comparisons = 0usize;
    // Gather buffers, reused across queries.
    let mut tile = vec![0.0f32; DEFAULT_TILE * dim];
    let mut tile_norms = vec![0.0f32; DEFAULT_TILE];
    let mut scores = vec![0.0f32; DEFAULT_TILE];
    for i in 0..n {
        let q = &sources[i * dim..(i + 1) * dim];
        let q_norm = src_norms.get(i).copied().unwrap_or(0.0);
        let cands = index.candidates(q);
        comparisons += cands.len();
        let mut best: Option<(u32, f32)> = None;
        for batch in cands.chunks(DEFAULT_TILE) {
            for (slot, &j) in batch.iter().enumerate() {
                let j = j as usize;
                tile[slot * dim..(slot + 1) * dim]
                    .copy_from_slice(&targets[j * dim..(j + 1) * dim]);
                if !dst_norms.is_empty() {
                    tile_norms[slot] = dst_norms[j];
                }
            }
            let out = &mut scores[..batch.len()];
            metric.similarity_block(
                q,
                q_norm,
                &tile[..batch.len() * dim],
                if dst_norms.is_empty() {
                    &[]
                } else {
                    &tile_norms[..batch.len()]
                },
                dim,
                out,
            );
            for (slot, &s) in out.iter().enumerate() {
                match best {
                    Some((_, bs)) if score_desc(s, bs) != Ordering::Less => {}
                    _ => best = Some((batch[slot], s)),
                }
            }
        }
        matches.push(best.map(|(j, _)| j));
    }
    BlockedMatch {
        matches,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simmat::SimilarityMatrix;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    /// Paired embeddings: target i = source i + small noise.
    fn paired(n: usize, dim: usize, noise: f32, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut src = Vec::with_capacity(n * dim);
        let mut dst = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            src.extend(v.iter());
            dst.extend(v.iter().map(|x| x + rng.gen_range(-noise..=noise)));
        }
        (src, dst)
    }

    #[test]
    fn blocking_approximates_exact_greedy() {
        let (src, dst) = paired(300, 16, 0.05, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let index = LshIndex::build(&dst, 16, 10, 8, &mut rng);
        let blocked = blocked_greedy_match(&src, &dst, 16, Metric::Cosine, &index);
        // Exact matching for reference.
        let exact = SimilarityMatrix::compute(&src, &dst, 16, Metric::Cosine, 2);
        let mut agree = 0;
        for i in 0..300 {
            if blocked.matches[i].map(|j| j as usize) == exact.argmax_row(i) {
                agree += 1;
            }
        }
        assert!(agree > 240, "only {agree}/300 agree with exact search");
        // And it must actually *block*: far fewer comparisons than 300².
        assert!(
            blocked.comparisons < 300 * 300 / 2,
            "comparisons {} not sublinear",
            blocked.comparisons
        );
    }

    #[test]
    fn candidates_contain_near_duplicates() {
        let (src, dst) = paired(100, 8, 0.01, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let index = LshIndex::build(&dst, 8, 8, 10, &mut rng);
        let mut hit = 0;
        for i in 0..100 {
            let q = &src[i * 8..(i + 1) * 8];
            if index.candidates(q).contains(&(i as u32)) {
                hit += 1;
            }
        }
        assert!(hit > 90, "true counterpart found for only {hit}/100");
    }

    #[test]
    fn empty_buckets_yield_no_match() {
        let mut rng = SmallRng::seed_from_u64(5);
        // One far-away target; query in the opposite orthant may miss.
        let dst = vec![1.0f32; 8];
        let index = LshIndex::build(&dst, 8, 12, 1, &mut rng);
        let src: Vec<f32> = (0..8).map(|_| -1.0f32).collect();
        let blocked = blocked_greedy_match(&src, &dst, 8, Metric::Cosine, &index);
        // Either it found the lone target (collision) or nothing — no panic.
        assert_eq!(blocked.matches.len(), 1);
    }
}
