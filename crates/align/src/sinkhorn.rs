//! Entropic optimal-transport matching (Sinkhorn–Knopp), the machinery
//! behind OTEA \[58\] in the paper's survey (Table 1: optimal transport for
//! cross-lingual alignment). A fourth collective inference strategy next to
//! stable marriage and Kuhn–Munkres: compute the entropy-regularized
//! transport plan between source and target entities and round it to a
//! 1-to-1 matching.

use crate::simmat::SimilarityMatrix;
use crate::topk::{score_desc, TopKMatrix};

/// Parameters of [`sinkhorn_match`].
#[derive(Clone, Copy, Debug)]
pub struct SinkhornConfig {
    /// Entropic regularization strength (smaller = closer to exact OT but
    /// slower/less stable).
    pub epsilon: f32,
    /// Sinkhorn iterations.
    pub iterations: usize,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            iterations: 60,
        }
    }
}

/// The entropy-regularized transport plan between uniform marginals, as a
/// dense `rows × cols` matrix (rows sum to `1/rows` each after convergence
/// when `rows == cols`).
pub fn sinkhorn_plan(sim: &SimilarityMatrix, cfg: SinkhornConfig) -> Vec<f32> {
    let rows = sim.rows();
    let cols = sim.cols();
    if rows == 0 || cols == 0 {
        return Vec::new();
    }
    // Gibbs kernel K = exp(sim / ε), normalized per-row for stability.
    let mut k = vec![0.0f32; rows * cols];
    for i in 0..rows {
        let row = sim.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for (j, &s) in row.iter().enumerate() {
            k[i * cols + j] = ((s - max) / cfg.epsilon).exp();
        }
    }
    let (ra, ca) = (1.0 / rows as f32, 1.0 / cols as f32);
    let mut u = vec![1.0f32; rows];
    let mut v = vec![1.0f32; cols];
    for _ in 0..cfg.iterations {
        // u = r / (K v)
        for i in 0..rows {
            let mut kv = 0.0f32;
            for j in 0..cols {
                kv += k[i * cols + j] * v[j];
            }
            u[i] = ra / kv.max(1e-30);
        }
        // v = c / (Kᵀ u)
        for j in 0..cols {
            let mut ku = 0.0f32;
            for i in 0..rows {
                ku += k[i * cols + j] * u[i];
            }
            v[j] = ca / ku.max(1e-30);
        }
    }
    let mut plan = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            plan[i * cols + j] = u[i] * k[i * cols + j] * v[j];
        }
    }
    plan
}

/// Rounds the transport plan to a 1-to-1 matching by greedy selection over
/// transported mass. Returns `match[i] = j`.
pub fn sinkhorn_match(sim: &SimilarityMatrix, cfg: SinkhornConfig) -> Vec<Option<usize>> {
    let rows = sim.rows();
    let cols = sim.cols();
    let plan = sinkhorn_plan(sim, cfg);
    let mut cells: Vec<(f32, u32, u32)> = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            cells.push((plan[i * cols + j], i as u32, j as u32));
        }
    }
    cells.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let mut used_src = vec![false; rows];
    let mut used_dst = vec![false; cols];
    let mut out = vec![None; rows];
    for (_, i, j) in cells {
        let (i, j) = (i as usize, j as usize);
        if !used_src[i] && !used_dst[j] {
            used_src[i] = true;
            used_dst[j] = true;
            out[i] = Some(j);
        }
    }
    out
}

/// Sparse Sinkhorn over a streamed top-k support: the transport plan is
/// restricted to each source's `k` best targets, so memory and per-iteration
/// cost are O(rows·k) instead of O(rows·cols). Returns per-row
/// `(target, mass)` entries aligned with `topk`'s rows.
///
/// With `k ≥ cols` the support is dense and the plan converges to the same
/// transport as [`sinkhorn_plan`] (up to float summation order — the sparse
/// path sums each row in descending-similarity order).
pub fn sinkhorn_plan_topk(topk: &TopKMatrix, cfg: SinkhornConfig) -> Vec<Vec<(u32, f32)>> {
    let rows = topk.rows();
    let cols = topk.cols();
    if rows == 0 || cols == 0 || topk.k() == 0 {
        return vec![Vec::new(); rows];
    }
    // Gibbs kernel on the support, row-max normalized for stability. Rows
    // are sorted descending, so entry 0 carries the row maximum.
    let kernel: Vec<Vec<(u32, f32)>> = (0..rows)
        .map(|i| {
            let row = topk.row(i);
            let max = row[0].1;
            row.iter()
                .map(|&(j, s)| (j, ((s - max) / cfg.epsilon).exp()))
                .collect()
        })
        .collect();
    let (ra, ca) = (1.0 / rows as f32, 1.0 / cols as f32);
    let mut u = vec![1.0f32; rows];
    let mut v = vec![1.0f32; cols];
    let mut ku = vec![0.0f32; cols];
    for _ in 0..cfg.iterations {
        for (i, row) in kernel.iter().enumerate() {
            let kv: f32 = row.iter().map(|&(j, k)| k * v[j as usize]).sum();
            u[i] = ra / kv.max(1e-30);
        }
        ku.fill(0.0);
        for (i, row) in kernel.iter().enumerate() {
            for &(j, k) in row {
                ku[j as usize] += k * u[i];
            }
        }
        for (j, kuj) in ku.iter().enumerate() {
            // Targets outside every support row keep v = 1; they carry no
            // mass anyway.
            if *kuj > 0.0 {
                v[j] = ca / kuj.max(1e-30);
            }
        }
    }
    kernel
        .into_iter()
        .enumerate()
        .map(|(i, row)| {
            row.into_iter()
                .map(|(j, k)| (j, u[i] * k * v[j as usize]))
                .collect()
        })
        .collect()
}

/// Rounds the sparse transport plan of [`sinkhorn_plan_topk`] to a 1-to-1
/// matching by greedy selection over transported mass; mass ties break on
/// `(source, target)` index order for determinism.
pub fn sinkhorn_match_topk(topk: &TopKMatrix, cfg: SinkhornConfig) -> Vec<Option<usize>> {
    let rows = topk.rows();
    let cols = topk.cols();
    let plan = sinkhorn_plan_topk(topk, cfg);
    let mut cells: Vec<(f32, u32, u32)> = plan
        .iter()
        .enumerate()
        .flat_map(|(i, row)| row.iter().map(move |&(j, m)| (m, i as u32, j)))
        .collect();
    cells.sort_by(|a, b| score_desc(a.0, b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut used_src = vec![false; rows];
    let mut used_dst = vec![false; cols];
    let mut out = vec![None; rows];
    for (_, i, j) in cells {
        let (i, j) = (i as usize, j as usize);
        if !used_src[i] && !used_dst[j] {
            used_src[i] = true;
            used_dst[j] = true;
            out[i] = Some(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{greedy_match, hungarian};

    #[test]
    fn plan_marginals_are_uniform() {
        let sim =
            SimilarityMatrix::from_raw(3, 3, vec![0.9, 0.1, 0.0, 0.2, 0.8, 0.1, 0.0, 0.3, 0.7]);
        let plan = sinkhorn_plan(&sim, SinkhornConfig::default());
        for i in 0..3 {
            let row_sum: f32 = (0..3).map(|j| plan[i * 3 + j]).sum();
            assert!(
                (row_sum - 1.0 / 3.0).abs() < 1e-3,
                "row {i} sums to {row_sum}"
            );
        }
        for j in 0..3 {
            let col_sum: f32 = (0..3).map(|i| plan[i * 3 + j]).sum();
            assert!(
                (col_sum - 1.0 / 3.0).abs() < 1e-3,
                "col {j} sums to {col_sum}"
            );
        }
    }

    #[test]
    fn sinkhorn_resolves_hub_conflicts() {
        // Greedy sends both sources to target 0; OT must split them.
        let sim = SimilarityMatrix::from_raw(2, 2, vec![0.9, 0.1, 0.8, 0.75]);
        let greedy = greedy_match(&sim);
        assert_eq!(greedy, vec![Some(0), Some(0)]);
        let ot = sinkhorn_match(&sim, SinkhornConfig::default());
        assert_eq!(ot, vec![Some(0), Some(1)]);
    }

    #[test]
    fn sinkhorn_agrees_with_hungarian_on_clear_inputs() {
        let sim = SimilarityMatrix::from_raw(
            4,
            4,
            vec![
                0.9, 0.1, 0.2, 0.0, //
                0.0, 0.8, 0.1, 0.2, //
                0.1, 0.0, 0.9, 0.1, //
                0.2, 0.1, 0.0, 0.7,
            ],
        );
        let h = hungarian(&sim);
        let ot = sinkhorn_match(&sim, SinkhornConfig::default());
        assert_eq!(h, ot);
    }

    #[test]
    fn empty_matrix_is_handled() {
        let sim = SimilarityMatrix::from_raw(0, 0, vec![]);
        assert!(sinkhorn_plan(&sim, SinkhornConfig::default()).is_empty());
        assert!(sinkhorn_match(&sim, SinkhornConfig::default()).is_empty());
    }

    #[test]
    fn sparse_plan_with_full_support_has_uniform_marginals() {
        let sim =
            SimilarityMatrix::from_raw(3, 3, vec![0.9, 0.1, 0.0, 0.2, 0.8, 0.1, 0.0, 0.3, 0.7]);
        let topk = TopKMatrix::from_matrix(&sim, 3);
        let plan = sinkhorn_plan_topk(&topk, SinkhornConfig::default());
        let mut col_sums = [0.0f32; 3];
        for (i, row) in plan.iter().enumerate() {
            let row_sum: f32 = row.iter().map(|&(_, m)| m).sum();
            assert!(
                (row_sum - 1.0 / 3.0).abs() < 1e-3,
                "row {i} sums to {row_sum}"
            );
            for &(j, m) in row {
                col_sums[j as usize] += m;
            }
        }
        for (j, s) in col_sums.iter().enumerate() {
            assert!((s - 1.0 / 3.0).abs() < 1e-3, "col {j} sums to {s}");
        }
    }

    #[test]
    fn sparse_match_with_full_support_equals_dense_match() {
        let sim = SimilarityMatrix::from_raw(
            4,
            4,
            vec![
                0.9, 0.1, 0.2, 0.0, //
                0.0, 0.8, 0.1, 0.2, //
                0.1, 0.0, 0.9, 0.1, //
                0.2, 0.1, 0.0, 0.7,
            ],
        );
        let topk = TopKMatrix::from_matrix(&sim, 4);
        assert_eq!(
            sinkhorn_match_topk(&topk, SinkhornConfig::default()),
            sinkhorn_match(&sim, SinkhornConfig::default())
        );
    }

    #[test]
    fn sparse_match_resolves_hub_conflict_on_truncated_support() {
        // Same hub fixture as the dense test, but with only 2-of-2 support
        // kept per row the conflict must still split.
        let sim = SimilarityMatrix::from_raw(2, 2, vec![0.9, 0.1, 0.8, 0.75]);
        let topk = TopKMatrix::from_matrix(&sim, 2);
        assert_eq!(
            sinkhorn_match_topk(&topk, SinkhornConfig::default()),
            vec![Some(0), Some(1)]
        );
    }

    #[test]
    fn sparse_empty_support_is_handled() {
        let sim = SimilarityMatrix::from_raw(0, 0, vec![]);
        let topk = TopKMatrix::from_matrix(&sim, 3);
        assert!(sinkhorn_plan_topk(&topk, SinkhornConfig::default()).is_empty());
        assert!(sinkhorn_match_topk(&topk, SinkhornConfig::default()).is_empty());
        let sim = SimilarityMatrix::from_raw(2, 3, vec![0.1; 6]);
        let topk = TopKMatrix::from_matrix(&sim, 0);
        assert_eq!(
            sinkhorn_match_topk(&topk, SinkhornConfig::default()),
            vec![None, None]
        );
    }

    #[test]
    fn rectangular_matrices_match_all_sources() {
        let sim = SimilarityMatrix::from_raw(2, 4, vec![0.9, 0.0, 0.1, 0.2, 0.1, 0.8, 0.0, 0.3]);
        let ot = sinkhorn_match(&sim, SinkhornConfig::default());
        assert_eq!(ot.iter().flatten().count(), 2);
        let set: std::collections::HashSet<_> = ot.iter().flatten().collect();
        assert_eq!(set.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::infer::{greedy_collective, hungarian};
    use openea_runtime::testkit::prelude::*;

    fn weight(sim: &SimilarityMatrix, m: &[Option<usize>]) -> f64 {
        m.iter()
            .enumerate()
            .filter_map(|(i, &j)| j.map(|j| sim.get(i, j) as f64))
            .sum()
    }

    props! {
        #![cases = 32]

        /// OT matching is 1-to-1 and its weight is near the optimum.
        #[test]
        fn sinkhorn_matching_is_near_optimal(values in vec_of(0.0f32..1.0, 16)) {
            let sim = SimilarityMatrix::from_raw(4, 4, values);
            let ot = sinkhorn_match(&sim, SinkhornConfig::default());
            let picked: Vec<usize> = ot.iter().flatten().copied().collect();
            let distinct: std::collections::HashSet<_> = picked.iter().collect();
            prop_assert_eq!(picked.len(), distinct.len());
            let h = hungarian(&sim);
            let gc = greedy_collective(&sim);
            // At least as good as the greedy heuristic, within tolerance of
            // the optimum (entropic smoothing costs a little).
            prop_assert!(weight(&sim, &ot) >= weight(&sim, &gc) - 0.15);
            prop_assert!(weight(&sim, &ot) <= weight(&sim, &h) + 1e-4);
        }
    }
}
