//! Streaming top-k similarity search — the O(n·k) companion to the dense
//! [`SimilarityMatrix`](crate::simmat::SimilarityMatrix).
//!
//! Hits@k evaluation, CSLS neighborhood means, greedy/stable-marriage
//! inference and BootEA's candidate refresh only ever need the `k` best
//! targets per source, yet the dense path materializes all `n × m` scores
//! (354 MB of `f32` at 9600×9600 — and quadratically worse on the
//! 100K-analog grid). [`TopKMatrix`] runs the same tiled block kernels but
//! folds each tile of scores straight into a per-row top-k accumulator, so
//! memory is O(rows × k) regardless of the target count.
//!
//! ## Determinism contract
//!
//! * Scores are bit-identical to the dense kernels (same per-pair
//!   accumulation order; the tile size only changes the loop structure).
//! * Each row is sorted by descending score; **ties break toward the lowest
//!   target index** — exactly a stable argsort of the full row. NaN scores
//!   (impossible for the built-in metrics, which define cosine of a zero
//!   vector as 0) order after every finite score instead of poisoning a
//!   comparison.
//! * Results are invariant to thread count and tile size; the
//!   kernel-equivalence suite and `tests/determinism.rs` pin both.

use crate::metric::Metric;
use crate::simmat::{SimilarityMatrix, DEFAULT_TILE};
use openea_math::vecops;
use openea_runtime::pool::{balanced_chunk_len, parallel_chunks};
use std::cmp::Ordering;

/// Descending score order with NaN sorted last — the one comparator every
/// kernel, accumulator and test shares.
#[inline]
pub(crate) fn score_desc(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        _ => b.partial_cmp(&a).expect("both finite"),
    }
}

/// Pushes `(idx, score)` into `acc`, keeping at most `k` entries sorted by
/// descending score with ties toward the lower index. Callers feed indices
/// in ascending order, so inserting *after* equal scores preserves the
/// lowest-index-wins rule.
#[inline]
pub(crate) fn push_topk(acc: &mut Vec<(u32, f32)>, k: usize, idx: u32, score: f32) {
    debug_assert!(acc.last().is_none_or(|&(i, _)| i < idx), "indices ascend");
    if acc.len() == k {
        match acc.last() {
            Some(&(_, worst)) if score_desc(worst, score) == Ordering::Greater => {
                acc.pop();
            }
            _ => return,
        }
    }
    let pos = acc.partition_point(|&(_, s)| score_desc(s, score) != Ordering::Greater);
    acc.insert(pos, (idx, score));
}

/// [`push_topk`] for callers that feed indices in *arbitrary* order (the
/// IVF two-stage path visits targets partition by partition): the insertion
/// position accounts for the index on score ties, so the kept entries are
/// always exactly the first `k` of a stable argsort (descending score,
/// lowest index wins) of everything pushed so far.
#[inline]
pub(crate) fn push_topk_any(acc: &mut Vec<(u32, f32)>, k: usize, idx: u32, score: f32) {
    let pos = acc.partition_point(|&(i, s)| match score_desc(s, score) {
        Ordering::Less => true,
        Ordering::Equal => i < idx,
        Ordering::Greater => false,
    });
    if pos >= k {
        return;
    }
    acc.insert(pos, (idx, score));
    if acc.len() > k {
        acc.pop();
    }
}

/// The `k` most similar targets of every source row, most similar first.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKMatrix {
    rows: usize,
    cols: usize,
    /// Entries kept per row: `min(requested k, cols)`.
    k: usize,
    /// Row-major `rows × k` `(target index, score)` pairs.
    entries: Vec<(u32, f32)>,
}

impl TopKMatrix {
    /// Streams the `src × dst` similarities under `metric` tile by tile and
    /// keeps the `k` best targets per source row, never materializing the
    /// full matrix. Scores are bit-identical to
    /// [`SimilarityMatrix::compute`].
    pub fn compute(
        src: &[f32],
        dst: &[f32],
        dim: usize,
        metric: Metric,
        k: usize,
        threads: usize,
    ) -> Self {
        Self::compute_tiled(src, dst, dim, metric, k, threads, DEFAULT_TILE)
    }

    /// [`TopKMatrix::compute`] with an explicit tile size (results are
    /// tile-size invariant; the size only tunes cache behavior).
    pub fn compute_tiled(
        src: &[f32],
        dst: &[f32],
        dim: usize,
        metric: Metric,
        k: usize,
        threads: usize,
        tile: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(tile > 0, "tile must be positive");
        assert_eq!(src.len() % dim, 0);
        assert_eq!(dst.len() % dim, 0);
        let rows = src.len() / dim;
        let cols = dst.len() / dim;
        let k = k.min(cols);
        if rows == 0 || k == 0 {
            return Self {
                rows,
                cols,
                k,
                entries: Vec::new(),
            };
        }
        let src_norms = metric.row_norms(src, dim);
        let dst_norms = metric.row_norms(dst, dim);
        let mut entries = vec![(0u32, 0.0f32); rows * k];
        let threads = threads.clamp(1, rows);
        let chunk_rows = balanced_chunk_len(rows, threads, 4);
        parallel_chunks(&mut entries, chunk_rows * k, threads, |chunk_idx, out| {
            let row0 = chunk_idx * chunk_rows;
            let chunk_len = out.len() / k;
            const P: usize = vecops::PANEL;
            let mut scores = vec![0.0f32; P * tile.min(cols)];
            let mut tile_t = Vec::new();
            // Tile-outer / row-inner so the transpose is amortized over the
            // chunk's rows. Each row's accumulator still sees target indices
            // in ascending order (tiles advance left to right), which is what
            // `push_topk`'s tie rule relies on.
            let mut accs: Vec<Vec<(u32, f32)>> = vec![Vec::with_capacity(k); chunk_len];
            let mut j0 = 0;
            while j0 < cols {
                let j1 = (j0 + tile).min(cols);
                vecops::transpose_tile(&dst[j0 * dim..j1 * dim], dim, &mut tile_t);
                let tn: &[f32] = if dst_norms.is_empty() {
                    &[]
                } else {
                    &dst_norms[j0..j1]
                };
                let bw = j1 - j0;
                // Register panels over quads of chunk rows (scores are
                // bit-identical to the single-row kernel, so the split is
                // unobservable in the kept entries), remainder rows single.
                let mut local = 0;
                while local + P <= chunk_len {
                    let i = row0 + local;
                    let a = &src[i * dim..(i + P) * dim];
                    let a_norms: [f32; P] =
                        std::array::from_fn(|r| src_norms.get(i + r).copied().unwrap_or(0.0));
                    let (s0, rest) = scores[..P * bw].split_at_mut(bw);
                    let (s1, rest) = rest.split_at_mut(bw);
                    let (s2, s3) = rest.split_at_mut(bw);
                    metric.similarity_panel_t(
                        a,
                        dim,
                        a_norms,
                        &tile_t,
                        tn,
                        [&mut *s0, &mut *s1, &mut *s2, &mut *s3],
                    );
                    for (r, block) in [s0, s1, s2, s3].into_iter().enumerate() {
                        let acc = &mut accs[local + r];
                        for (off, &s) in block.iter().enumerate() {
                            push_topk(acc, k, (j0 + off) as u32, s);
                        }
                    }
                    local += P;
                }
                while local < chunk_len {
                    let i = row0 + local;
                    let a = &src[i * dim..(i + 1) * dim];
                    let a_norm = src_norms.get(i).copied().unwrap_or(0.0);
                    let block = &mut scores[..bw];
                    metric.similarity_block_t(a, a_norm, &tile_t, tn, block);
                    for (off, &s) in block.iter().enumerate() {
                        push_topk(&mut accs[local], k, (j0 + off) as u32, s);
                    }
                    local += 1;
                }
                j0 = j1;
            }
            for (out_row, acc) in out.chunks_mut(k).zip(&accs) {
                out_row.copy_from_slice(acc);
            }
        });
        Self {
            rows,
            cols,
            k,
            entries,
        }
    }

    /// Top-k of every *row* of an already-materialized matrix — same
    /// selection and tie rule as the streaming path.
    pub fn from_matrix(sim: &SimilarityMatrix, k: usize) -> Self {
        let (rows, cols) = (sim.rows(), sim.cols());
        let k = k.min(cols);
        let mut entries = Vec::with_capacity(rows * k);
        let mut acc: Vec<(u32, f32)> = Vec::with_capacity(k);
        for i in 0..rows {
            acc.clear();
            for (j, &s) in sim.row(i).iter().enumerate() {
                push_topk(&mut acc, k, j as u32, s);
            }
            entries.extend_from_slice(&acc);
        }
        Self {
            rows,
            cols,
            k,
            entries,
        }
    }

    /// Top-k of every *column* of an already-materialized matrix: row `j` of
    /// the result lists the `k` sources most similar to target `j`.
    pub fn from_matrix_cols(sim: &SimilarityMatrix, k: usize) -> Self {
        let (rows, cols) = (sim.rows(), sim.cols());
        let k = k.min(rows);
        let mut accs: Vec<Vec<(u32, f32)>> = vec![Vec::with_capacity(k); cols];
        if k > 0 {
            for i in 0..rows {
                for (j, &s) in sim.row(i).iter().enumerate() {
                    push_topk(&mut accs[j], k, i as u32, s);
                }
            }
        }
        let mut entries = Vec::with_capacity(cols * k);
        for acc in &accs {
            entries.extend_from_slice(acc);
        }
        Self {
            rows: cols,
            cols: rows,
            k,
            entries,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The total number of candidate targets (not the kept count).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entries kept per row (`min(requested k, cols)`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kept `(target, score)` pairs of source `i`, most similar first.
    pub fn row(&self, i: usize) -> &[(u32, f32)] {
        &self.entries[i * self.k..(i + 1) * self.k]
    }

    /// Borrowing iterator over every row's kept `(target, score)` pairs in
    /// source order — lets callers walk the results without copying them out
    /// (the serving layer hands these slices straight to response encoding).
    /// Rows are empty slices when `k == 0`.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[(u32, f32)]> + '_ {
        (0..self.rows).map(move |i| &self.entries[i * self.k..(i + 1) * self.k])
    }

    /// The best target of source `i` (lowest index on ties), if any.
    pub fn best(&self, i: usize) -> Option<(usize, f32)> {
        if self.k == 0 {
            return None;
        }
        let (j, s) = self.row(i)[0];
        Some((j as usize, s))
    }

    /// CSLS neighborhood means: per row, the mean of its `min(k, kept)` best
    /// scores (ψ of Eq. 7). Rows with no entries get 0.
    pub fn neighborhood_means(&self, k: usize) -> Vec<f32> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let take = k.min(row.len());
                let sum: f32 = row[..take].iter().map(|&(_, s)| s).sum();
                sum / take.max(1) as f32
            })
            .collect()
    }

    /// Applies the CSLS rescaling (Eq. 7) to every kept entry:
    /// `2·s − psi_src[i] − psi_dst[j]`, re-sorting each row under the same
    /// descending-score, lowest-index-wins order.
    pub fn rescaled(&self, psi_src: &[f32], psi_dst: &[f32]) -> TopKMatrix {
        assert_eq!(psi_src.len(), self.rows);
        assert_eq!(psi_dst.len(), self.cols);
        let mut entries = self.entries.clone();
        for (i, row) in entries
            .chunks_mut(self.k.max(1))
            .take(self.rows)
            .enumerate()
        {
            for e in row.iter_mut() {
                e.1 = 2.0 * e.1 - psi_src[i] - psi_dst[e.0 as usize];
            }
            row.sort_by(|a, b| score_desc(a.1, b.1).then(a.0.cmp(&b.0)));
        }
        TopKMatrix {
            rows: self.rows,
            cols: self.cols,
            k: self.k,
            entries,
        }
    }
}

/// Streaming CSLS: computes the forward top-`keep` lists, both ψ
/// neighborhood-mean vectors (via a backward top-k pass over `dst × src`)
/// and returns the rescaled, re-ranked lists — all without materializing
/// the `n × m` matrix.
///
/// With `keep ≥ cols` this is exactly
/// [`SimilarityMatrix::csls`](crate::simmat::SimilarityMatrix::csls)
/// restricted to per-row argsorts (bit-identical scores); smaller `keep`
/// trades exactness at the re-ranking boundary for O(rows·keep) memory.
pub fn csls_topk(
    src: &[f32],
    dst: &[f32],
    dim: usize,
    metric: Metric,
    k: usize,
    keep: usize,
    threads: usize,
) -> TopKMatrix {
    let k = k.max(1);
    let fwd = TopKMatrix::compute(src, dst, dim, metric, keep.max(k), threads);
    let bwd = TopKMatrix::compute(dst, src, dim, metric, k, threads);
    let psi_src = fwd.neighborhood_means(k);
    let psi_dst = bwd.neighborhood_means(k);
    fwd.rescaled(&psi_src, &psi_dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        use openea_runtime::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn matches_full_matrix_argsort() {
        let src = embeddings(9, 4, 1);
        let dst = embeddings(13, 4, 2);
        for metric in Metric::ALL {
            let sim = SimilarityMatrix::compute(&src, &dst, 4, metric, 1);
            let topk = TopKMatrix::compute(&src, &dst, 4, metric, 5, 1);
            for i in 0..9 {
                let row = sim.row(i);
                let mut idx: Vec<u32> = (0..13u32).collect();
                idx.sort_by(|&a, &b| score_desc(row[a as usize], row[b as usize]).then(a.cmp(&b)));
                let expect: Vec<(u32, f32)> =
                    idx[..5].iter().map(|&j| (j, row[j as usize])).collect();
                assert_eq!(topk.row(i), &expect[..], "{} row {i}", metric.label());
            }
        }
    }

    #[test]
    fn ties_break_toward_lowest_index() {
        // Columns 1 and 3 tie for best; 0 and 4 tie for third.
        let sim = SimilarityMatrix::from_raw(1, 5, vec![0.2, 0.9, 0.1, 0.9, 0.2]);
        let t = TopKMatrix::from_matrix(&sim, 3);
        assert_eq!(t.row(0), &[(1, 0.9), (3, 0.9), (0, 0.2)]);
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        let src = embeddings(3, 2, 3);
        let t = TopKMatrix::compute(&src, &src, 2, Metric::Cosine, 0, 2);
        assert_eq!((t.rows(), t.cols(), t.k()), (3, 3, 0));
        assert_eq!(t.row(0), &[]);
        assert_eq!(t.best(0), None);
        let t = TopKMatrix::compute(&[], &src, 2, Metric::Cosine, 4, 2);
        assert_eq!((t.rows(), t.k()), (0, 3));
        let t = TopKMatrix::compute(&src, &[], 2, Metric::Cosine, 4, 2);
        assert_eq!((t.rows(), t.cols(), t.k()), (3, 0, 0));
        assert_eq!(t.best(1), None);
    }

    #[test]
    fn k_larger_than_cols_keeps_every_target() {
        let src = embeddings(4, 3, 4);
        let dst = embeddings(6, 3, 5);
        let t = TopKMatrix::compute(&src, &dst, 3, Metric::Euclidean, 100, 1);
        assert_eq!(t.k(), 6);
        for i in 0..4 {
            let mut seen: Vec<u32> = t.row(i).iter().map(|&(j, _)| j).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn column_topk_transposes_row_topk() {
        let src = embeddings(7, 3, 6);
        let dst = embeddings(5, 3, 7);
        let sim = SimilarityMatrix::compute(&src, &dst, 3, Metric::Cosine, 1);
        let cols = TopKMatrix::from_matrix_cols(&sim, 3);
        // Row j of the column top-k == streaming top-k of dst row j vs src.
        let back = TopKMatrix::compute(&dst, &src, 3, Metric::Cosine, 3, 1);
        assert_eq!(cols, back);
    }

    #[test]
    fn csls_topk_with_full_keep_matches_dense_csls() {
        let src = embeddings(8, 4, 8);
        let dst = embeddings(6, 4, 9);
        for metric in Metric::ALL {
            let sim = SimilarityMatrix::compute(&src, &dst, 4, metric, 2);
            let dense = sim.csls(3);
            let streamed = csls_topk(&src, &dst, 4, metric, 3, 6, 2);
            for i in 0..8 {
                let row = dense.row(i);
                let mut idx: Vec<u32> = (0..6u32).collect();
                idx.sort_by(|&a, &b| score_desc(row[a as usize], row[b as usize]).then(a.cmp(&b)));
                for (rank, &j) in idx.iter().enumerate() {
                    let (tj, ts) = streamed.row(i)[rank];
                    assert_eq!(tj, j, "{} row {i} rank {rank}", metric.label());
                    assert_eq!(
                        ts,
                        row[j as usize],
                        "{} row {i} rank {rank}",
                        metric.label()
                    );
                }
            }
        }
    }

    #[test]
    fn nan_scores_sort_last_without_panicking() {
        let sim = SimilarityMatrix::from_raw(1, 4, vec![0.5, f32::NAN, 0.7, f32::NAN]);
        let t = TopKMatrix::from_matrix(&sim, 4);
        let idx: Vec<u32> = t.row(0).iter().map(|&(j, _)| j).collect();
        assert_eq!(idx, vec![2, 0, 1, 3]);
    }

    #[test]
    fn iter_rows_matches_row_accessor() {
        let sim = SimilarityMatrix::from_raw(3, 4, (0..12).map(|v| v as f32).collect());
        let t = TopKMatrix::from_matrix(&sim, 2);
        let rows: Vec<&[(u32, f32)]> = t.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(*row, t.row(i));
        }
        // k == 0: every row is an empty borrowed slice, no panic.
        let empty = TopKMatrix::from_matrix(&sim, 0);
        assert_eq!(empty.iter_rows().len(), 3);
        assert!(empty.iter_rows().all(|r| r.is_empty()));
    }
}
