//! Dense source×target similarity matrices and the CSLS rescaling.
//!
//! Computing all pairwise similarities is the dominant inference cost (the
//! paper reports ~8 minutes on a 100K dataset with 10 processes), so the
//! matrix is built by cache-tiled block kernels dispatched in parallel over
//! scoped threads. See the "Kernel layer" section of DESIGN.md for the
//! tiling scheme and determinism contract; [`crate::topk`] holds the
//! streaming path that avoids materializing the matrix at all.
//!
//! ```
//! use openea_align::{Metric, SimilarityMatrix};
//!
//! let src = vec![1.0, 0.0,  0.0, 1.0]; // two 2-d source embeddings
//! let dst = vec![0.9, 0.1,  0.1, 0.9]; // two targets, slightly rotated
//! let sim = SimilarityMatrix::compute(&src, &dst, 2, Metric::Cosine, 1);
//! assert_eq!(sim.argmax_row(0), Some(0));
//! assert_eq!(sim.argmax_row(1), Some(1));
//! ```

use crate::metric::Metric;
use crate::topk::{push_topk, score_desc, TopKMatrix};
use openea_math::vecops;
use openea_runtime::pool::{balanced_chunk_len, parallel_chunks};

/// Default column-tile width for the block kernels. 64 targets × 64 dims of
/// `f32` is 16 KB — the tile stays resident in L1 while a source row streams
/// against it. Results are tile-size invariant (`tests/kernel_equivalence.rs`
/// pins this), so the constant only tunes cache behavior.
pub const DEFAULT_TILE: usize = 64;

/// A dense `sources × targets` similarity matrix.
#[derive(Clone, Debug)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl SimilarityMatrix {
    /// Computes all pairwise similarities between `src` (row-major
    /// `rows × dim`) and `dst` (`cols × dim`) under `metric`, using up to
    /// `threads` worker threads and the default tile size.
    pub fn compute(src: &[f32], dst: &[f32], dim: usize, metric: Metric, threads: usize) -> Self {
        Self::compute_tiled(src, dst, dim, metric, threads, DEFAULT_TILE)
    }

    /// [`SimilarityMatrix::compute`] with an explicit column-tile size.
    ///
    /// Each output element is a pure function of its `(i, j)` pair — the
    /// per-pair accumulation order inside the block kernels matches
    /// [`Metric::similarity`] exactly — so results are bit-identical across
    /// tile sizes and thread counts.
    pub fn compute_tiled(
        src: &[f32],
        dst: &[f32],
        dim: usize,
        metric: Metric,
        threads: usize,
        tile: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(tile > 0, "tile must be positive");
        assert_eq!(src.len() % dim, 0);
        assert_eq!(dst.len() % dim, 0);
        let rows = src.len() / dim;
        let cols = dst.len() / dim;
        let mut data = vec![0.0f32; rows * cols];
        if rows == 0 || cols == 0 {
            return Self { rows, cols, data };
        }
        let threads = threads.clamp(1, rows);
        let src_norms = metric.row_norms(src, dim);
        let dst_norms = metric.row_norms(dst, dim);

        // Chunk at row granularity — several chunks per worker so the pool's
        // stealing absorbs per-row cost skew. Chunk boundaries (and therefore
        // results) depend only on `rows`, never on the thread count. Within a
        // chunk the column tile is the outer loop: one tile of targets stays
        // hot in cache while every row of the chunk streams against it.
        let chunk_rows = balanced_chunk_len(rows, threads, 4);
        parallel_chunks(
            &mut data,
            chunk_rows * cols,
            threads,
            |chunk_idx, out_chunk| {
                let row0 = chunk_idx * chunk_rows;
                let chunk_len = out_chunk.len() / cols;
                let mut tile_t = Vec::new();
                let mut j0 = 0;
                while j0 < cols {
                    let j1 = (j0 + tile).min(cols);
                    // Transposed once per tile, amortized over the chunk's
                    // rows: the block kernel then sweeps contiguous lanes.
                    vecops::transpose_tile(&dst[j0 * dim..j1 * dim], dim, &mut tile_t);
                    let tn: &[f32] = if dst_norms.is_empty() {
                        &[]
                    } else {
                        &dst_norms[j0..j1]
                    };
                    // Register panels: PANEL source rows share each tile
                    // lane load; the remainder rows take the single-row
                    // kernel (bit-identical, so the split is unobservable).
                    const P: usize = vecops::PANEL;
                    let mut local = 0;
                    while local + P <= chunk_len {
                        let i = row0 + local;
                        let a = &src[i * dim..(i + P) * dim];
                        let a_norms: [f32; P] =
                            std::array::from_fn(|r| src_norms.get(i + r).copied().unwrap_or(0.0));
                        let quad = &mut out_chunk[local * cols..(local + P) * cols];
                        let (r0, rest) = quad.split_at_mut(cols);
                        let (r1, rest) = rest.split_at_mut(cols);
                        let (r2, r3) = rest.split_at_mut(cols);
                        metric.similarity_panel_t(
                            a,
                            dim,
                            a_norms,
                            &tile_t,
                            tn,
                            [
                                &mut r0[j0..j1],
                                &mut r1[j0..j1],
                                &mut r2[j0..j1],
                                &mut r3[j0..j1],
                            ],
                        );
                        local += P;
                    }
                    while local < chunk_len {
                        let i = row0 + local;
                        let a = &src[i * dim..(i + 1) * dim];
                        let a_norm = src_norms.get(i).copied().unwrap_or(0.0);
                        let out = &mut out_chunk[local * cols + j0..local * cols + j1];
                        metric.similarity_block_t(a, a_norm, &tile_t, tn, out);
                        local += 1;
                    }
                    j0 = j1;
                }
            },
        );

        Self { rows, cols, data }
    }

    /// Reference kernel: the straightforward per-pair loop the tiled path
    /// must match bit for bit. Kept for the equivalence suite and benches.
    pub fn compute_naive(
        src: &[f32],
        dst: &[f32],
        dim: usize,
        metric: Metric,
        threads: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(src.len() % dim, 0);
        assert_eq!(dst.len() % dim, 0);
        let rows = src.len() / dim;
        let cols = dst.len() / dim;
        let mut data = vec![0.0f32; rows * cols];
        if rows == 0 || cols == 0 {
            return Self { rows, cols, data };
        }
        let threads = threads.clamp(1, rows);
        let chunk_rows = balanced_chunk_len(rows, threads, 4);
        parallel_chunks(
            &mut data,
            chunk_rows * cols,
            threads,
            |chunk_idx, out_chunk| {
                let row0 = chunk_idx * chunk_rows;
                for (local, out_row) in out_chunk.chunks_mut(cols).enumerate() {
                    let i = row0 + local;
                    let a = &src[i * dim..(i + 1) * dim];
                    for (j, out) in out_row.iter_mut().enumerate() {
                        let b = &dst[j * dim..(j + 1) * dim];
                        *out = metric.similarity(a, b);
                    }
                }
            },
        );

        Self { rows, cols, data }
    }

    /// Builds a matrix directly from precomputed values (row-major).
    pub fn from_raw(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Index of the most similar target for source `i` — the lowest such
    /// index when several targets tie, matching the top-k tie rule.
    pub fn argmax_row(&self, i: usize) -> Option<usize> {
        let row = self.row(i);
        let mut best: Option<(usize, f32)> = None;
        for (j, &s) in row.iter().enumerate() {
            match best {
                Some((_, bs)) if score_desc(s, bs) != std::cmp::Ordering::Less => {}
                _ => best = Some((j, s)),
            }
        }
        best.map(|(j, _)| j)
    }

    /// The `k` most similar targets for source `i`, most similar first; ties
    /// break toward the lowest target index (a stable argsort prefix).
    pub fn topk_row(&self, i: usize, k: usize) -> Vec<(usize, f32)> {
        let row = self.row(i);
        let k = k.min(self.cols);
        let mut acc: Vec<(u32, f32)> = Vec::with_capacity(k);
        if k > 0 {
            for (j, &s) in row.iter().enumerate() {
                push_topk(&mut acc, k, j as u32, s);
            }
        }
        acc.into_iter().map(|(j, s)| (j as usize, s)).collect()
    }

    /// The rank (1-based) of target `j` among all targets for source `i`,
    /// counting ties pessimistically (equal scores rank ahead).
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        let row = self.row(i);
        let s = row[j];
        1 + row
            .iter()
            .enumerate()
            .filter(|&(c, &x)| c != j && x >= s)
            .count()
    }

    /// Applies CSLS (Eq. 7): `2·sim(i,j) − ψ_t(i) − ψ_s(j)`, where `ψ_t(i)`
    /// is the mean similarity of source `i` to its `k` nearest targets and
    /// `ψ_s(j)` symmetrically. Hubs (targets near everything) get globally
    /// penalized; isolated targets get boosted.
    ///
    /// The ψ means are built from the same top-k selection as the streaming
    /// [`crate::topk::csls_topk`] (same candidates, same summation order), so
    /// the two paths agree bitwise when the streaming path keeps every
    /// column.
    pub fn csls(&self, k: usize) -> SimilarityMatrix {
        let k = k.max(1);
        let psi_src = TopKMatrix::from_matrix(self, k).neighborhood_means(k);
        let psi_dst = TopKMatrix::from_matrix_cols(self, k).neighborhood_means(k);

        let mut data = Vec::with_capacity(self.rows * self.cols);
        #[allow(clippy::needless_range_loop)] // multi-array indexed math reads clearer
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &s) in row.iter().enumerate() {
                data.push(2.0 * s - psi_src[i] - psi_dst[j]);
            }
        }
        SimilarityMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings() -> (Vec<f32>, Vec<f32>) {
        // Three 2-d source points, three targets that mirror them.
        let src = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let dst = vec![1.0, 0.1, 0.1, 1.0, 0.9, 1.1];
        (src, dst)
    }

    #[test]
    fn compute_matches_direct_metric() {
        let (src, dst) = embeddings();
        for metric in Metric::ALL {
            let m = SimilarityMatrix::compute(&src, &dst, 2, metric, 2);
            assert_eq!(m.rows(), 3);
            assert_eq!(m.cols(), 3);
            for i in 0..3 {
                for j in 0..3 {
                    let expect = metric.similarity(&src[i * 2..i * 2 + 2], &dst[j * 2..j * 2 + 2]);
                    assert_eq!(m.get(i, j), expect, "{} ({i},{j})", metric.label());
                }
            }
        }
    }

    #[test]
    fn tiled_equals_naive_bitwise() {
        let src: Vec<f32> = (0..40).map(|x| (x as f32).sin()).collect();
        let dst: Vec<f32> = (0..36).map(|x| (x as f32).cos()).collect();
        for metric in Metric::ALL {
            let naive = SimilarityMatrix::compute_naive(&src, &dst, 4, metric, 1);
            for tile in [1, 3, 64] {
                let tiled = SimilarityMatrix::compute_tiled(&src, &dst, 4, metric, 2, tile);
                assert_eq!(naive.data, tiled.data, "{} tile={tile}", metric.label());
            }
        }
    }

    #[test]
    fn multithreaded_equals_singlethreaded() {
        let src: Vec<f32> = (0..40).map(|x| (x as f32).sin()).collect();
        let dst: Vec<f32> = (0..36).map(|x| (x as f32).cos()).collect();
        let a = SimilarityMatrix::compute(&src, &dst, 4, Metric::Cosine, 1);
        for threads in [2, 4, 8] {
            let b = SimilarityMatrix::compute(&src, &dst, 4, Metric::Cosine, threads);
            assert_eq!(a.data, b.data, "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_matrix() {
        let some: Vec<f32> = vec![1.0, 0.0, 0.0, 1.0];
        for threads in [1, 4] {
            // 0×N: no sources.
            let m = SimilarityMatrix::compute(&[], &some, 2, Metric::Cosine, threads);
            assert_eq!((m.rows(), m.cols()), (0, 2));
            assert!(m.data.is_empty());
            // N×0: no targets.
            let m = SimilarityMatrix::compute(&some, &[], 2, Metric::Cosine, threads);
            assert_eq!((m.rows(), m.cols()), (2, 0));
            assert!(m.data.is_empty());
            assert_eq!(m.topk_row(0, 3), vec![]);
            assert_eq!(m.argmax_row(0), None);
            // 0×0: nothing at all.
            let m = SimilarityMatrix::compute(&[], &[], 2, Metric::Cosine, threads);
            assert_eq!((m.rows(), m.cols()), (0, 0));
            assert!(m.data.is_empty());
        }
    }

    #[test]
    fn argmax_and_rank() {
        let (src, dst) = embeddings();
        let m = SimilarityMatrix::compute(&src, &dst, 2, Metric::Cosine, 1);
        assert_eq!(m.argmax_row(0), Some(0));
        assert_eq!(m.argmax_row(1), Some(1));
        assert_eq!(m.argmax_row(2), Some(2));
        assert_eq!(m.rank_of(0, 0), 1);
        assert!(m.rank_of(0, 1) > 1);
    }

    #[test]
    fn argmax_ties_break_toward_lowest_index() {
        let m = SimilarityMatrix::from_raw(1, 4, vec![0.3, 0.9, 0.9, 0.1]);
        assert_eq!(m.argmax_row(0), Some(1));
    }

    #[test]
    fn topk_is_sorted_descending() {
        let m = SimilarityMatrix::from_raw(1, 5, vec![0.1, 0.9, 0.5, 0.7, 0.3]);
        let top = m.topk_row(0, 3);
        assert_eq!(
            top.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
            vec![1, 3, 2]
        );
        let all = m.topk_row(0, 10);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn topk_ties_are_stable() {
        let m = SimilarityMatrix::from_raw(1, 5, vec![0.5, 0.9, 0.5, 0.9, 0.5]);
        let top = m.topk_row(0, 4);
        assert_eq!(
            top.iter().map(|&(j, _)| j).collect::<Vec<_>>(),
            vec![1, 3, 0, 2]
        );
    }

    #[test]
    fn csls_penalizes_hubs() {
        // Target 0 is a hub: nearly top for every source, narrowly beating
        // the true counterparts of sources 1 and 2.
        let m = SimilarityMatrix::from_raw(
            3,
            3,
            vec![
                0.9, 0.2, 0.1, // source 0: hub is the true match
                0.9, 0.85, 0.1, // source 1: true match is target 1
                0.9, 0.1, 0.85, // source 2: true match is target 2
            ],
        );
        assert_eq!(m.argmax_row(1), Some(0));
        assert_eq!(m.argmax_row(2), Some(0));
        let c = m.csls(2);
        // CSLS penalizes the hub globally: sources 1 and 2 flip to their
        // true matches, source 0 keeps the hub.
        assert_eq!(c.argmax_row(0), Some(0), "csls row0 = {:?}", c.row(0));
        assert_eq!(c.argmax_row(1), Some(1), "csls row1 = {:?}", c.row(1));
        assert_eq!(c.argmax_row(2), Some(2), "csls row2 = {:?}", c.row(2));
    }

    #[test]
    fn csls_preserves_clear_matches() {
        let (src, dst) = embeddings();
        let m = SimilarityMatrix::compute(&src, &dst, 2, Metric::Cosine, 1);
        let c = m.csls(2);
        for i in 0..3 {
            assert_eq!(c.argmax_row(i), Some(i));
        }
    }

    #[test]
    fn rank_handles_ties_pessimistically() {
        let m = SimilarityMatrix::from_raw(1, 3, vec![0.5, 0.5, 0.1]);
        assert_eq!(m.rank_of(0, 0), 2);
        assert_eq!(m.rank_of(0, 1), 2);
    }
}
