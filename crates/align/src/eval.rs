//! Evaluation metrics: Hits@m, mean rank, mean reciprocal rank (the link
//! prediction conventions the field borrowed), precision/recall/F1 (the
//! OAEI/conventional convention), and mean±std aggregation across folds.

use crate::metric::Metric;
use crate::simmat::{SimilarityMatrix, DEFAULT_TILE};
use openea_runtime::pool::{balanced_chunk_len, parallel_chunks};
use std::collections::HashSet;

/// Ranking metrics over a test set. `hits[m]` is Hits@m.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankEval {
    pub hits1: f64,
    pub hits5: f64,
    pub hits10: f64,
    /// Mean rank of the true counterpart (1-based).
    pub mr: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Evaluates a similarity matrix whose row `i` is the i-th test source entity
/// and whose columns are the candidate targets; `gold[i]` is the column of
/// the true counterpart of row `i`.
pub fn rank_eval(sim: &SimilarityMatrix, gold: &[usize]) -> RankEval {
    assert_eq!(sim.rows(), gold.len(), "one gold target per source row");
    if gold.is_empty() {
        return RankEval::default();
    }
    let mut hits1 = 0usize;
    let mut hits5 = 0usize;
    let mut hits10 = 0usize;
    let mut mr = 0.0f64;
    let mut mrr = 0.0f64;
    for (i, &g) in gold.iter().enumerate() {
        let rank = sim.rank_of(i, g);
        if rank <= 1 {
            hits1 += 1;
        }
        if rank <= 5 {
            hits5 += 1;
        }
        if rank <= 10 {
            hits10 += 1;
        }
        mr += rank as f64;
        mrr += 1.0 / rank as f64;
    }
    let n = gold.len() as f64;
    RankEval {
        hits1: hits1 as f64 / n,
        hits5: hits5 as f64 / n,
        hits10: hits10 as f64 / n,
        mr: mr / n,
        mrr: mrr / n,
    }
}

/// Streaming [`rank_eval`]: computes the same ranking metrics directly from
/// the embeddings without materializing the `rows × cols` similarity matrix.
///
/// Each row's gold score is computed once, then the row's similarities are
/// streamed tile by tile and only the count of targets scoring at least the
/// gold score is kept — O(tile) transient memory per worker. Scores come
/// from the same block kernels as [`SimilarityMatrix::compute`], so the
/// result equals `rank_eval(&SimilarityMatrix::compute(..), gold)` exactly.
pub fn rank_eval_streaming(
    src: &[f32],
    dst: &[f32],
    dim: usize,
    metric: Metric,
    gold: &[usize],
    threads: usize,
) -> RankEval {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(src.len() % dim, 0);
    assert_eq!(dst.len() % dim, 0);
    let rows = src.len() / dim;
    let cols = dst.len() / dim;
    assert_eq!(rows, gold.len(), "one gold target per source row");
    if gold.is_empty() {
        return RankEval::default();
    }
    let src_norms = metric.row_norms(src, dim);
    let dst_norms = metric.row_norms(dst, dim);
    let mut ranks = vec![0usize; rows];
    let threads = threads.clamp(1, rows);
    let chunk_rows = balanced_chunk_len(rows, threads, 4);
    parallel_chunks(&mut ranks, chunk_rows, threads, |chunk_idx, out| {
        let row0 = chunk_idx * chunk_rows;
        let mut scores = vec![0.0f32; DEFAULT_TILE.min(cols)];
        for (local, out_rank) in out.iter_mut().enumerate() {
            let i = row0 + local;
            let g = gold[i];
            assert!(g < cols, "gold target {g} out of range for row {i}");
            let a = &src[i * dim..(i + 1) * dim];
            let a_norm = src_norms.get(i).copied().unwrap_or(0.0);
            let s = metric.similarity(a, &dst[g * dim..(g + 1) * dim]);
            // Ties count pessimistically (>=), matching `rank_of`.
            let mut ahead = 0usize;
            let mut j0 = 0;
            while j0 < cols {
                let j1 = (j0 + DEFAULT_TILE).min(cols);
                let block = &mut scores[..j1 - j0];
                metric.similarity_block(
                    a,
                    a_norm,
                    &dst[j0 * dim..j1 * dim],
                    if dst_norms.is_empty() {
                        &[]
                    } else {
                        &dst_norms[j0..j1]
                    },
                    dim,
                    block,
                );
                for (off, &x) in block.iter().enumerate() {
                    if x >= s && j0 + off != g {
                        ahead += 1;
                    }
                }
                j0 = j1;
            }
            *out_rank = 1 + ahead;
        }
    });

    let mut hits1 = 0usize;
    let mut hits5 = 0usize;
    let mut hits10 = 0usize;
    let mut mr = 0.0f64;
    let mut mrr = 0.0f64;
    for &rank in &ranks {
        if rank <= 1 {
            hits1 += 1;
        }
        if rank <= 5 {
            hits5 += 1;
        }
        if rank <= 10 {
            hits10 += 1;
        }
        mr += rank as f64;
        mrr += 1.0 / rank as f64;
    }
    let n = gold.len() as f64;
    RankEval {
        hits1: hits1 as f64 / n,
        hits5: hits5 as f64 / n,
        hits10: hits10 as f64 / n,
        mr: mr / n,
        mrr: mrr / n,
    }
}

/// Precision / recall / F1 of a predicted alignment set against gold pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrfScores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Computes P/R/F1 for `predicted` pairs against the `gold` set.
pub fn precision_recall_f1(predicted: &[(u32, u32)], gold: &HashSet<(u32, u32)>) -> PrfScores {
    if predicted.is_empty() || gold.is_empty() {
        return PrfScores::default();
    }
    let correct = predicted.iter().filter(|p| gold.contains(p)).count() as f64;
    let precision = correct / predicted.len() as f64;
    let recall = correct / gold.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrfScores {
        precision,
        recall,
        f1,
    }
}

/// Mean ± standard deviation over cross-validation folds, formatted like the
/// paper's tables (`.507± .010`).
#[derive(Clone, Debug, Default)]
pub struct MeanStd {
    values: Vec<f64>,
}

impl MeanStd {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation (the paper reports spread over exactly
    /// the five folds).
    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Paper-style rendering: `.507±.010`.
    pub fn paper_format(&self) -> String {
        format!("{:.3}±{:.3}", self.mean(), self.std()).replace("0.", ".")
    }
}

impl Extend<f64> for MeanStd {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let sim = SimilarityMatrix::from_raw(2, 3, vec![0.9, 0.1, 0.0, 0.0, 0.1, 0.9]);
        let e = rank_eval(&sim, &[0, 2]);
        assert_eq!(e.hits1, 1.0);
        assert_eq!(e.hits5, 1.0);
        assert_eq!(e.mr, 1.0);
        assert_eq!(e.mrr, 1.0);
    }

    #[test]
    fn mixed_ranking() {
        // Row 0 ranks gold at 1; row 1 ranks gold at 3.
        let sim = SimilarityMatrix::from_raw(2, 3, vec![0.9, 0.1, 0.0, 0.5, 0.4, 0.3]);
        let e = rank_eval(&sim, &[0, 2]);
        assert!((e.hits1 - 0.5).abs() < 1e-12);
        assert!((e.mr - 2.0).abs() < 1e-12);
        assert!((e.mrr - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(e.hits5, 1.0);
    }

    #[test]
    fn empty_test_set() {
        let sim = SimilarityMatrix::from_raw(0, 0, vec![]);
        assert_eq!(rank_eval(&sim, &[]), RankEval::default());
    }

    #[test]
    fn streaming_rank_eval_equals_matrix_rank_eval() {
        use openea_runtime::rng::{Rng, SeedableRng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let dim = 5;
        let src: Vec<f32> = (0..23 * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let dst: Vec<f32> = (0..31 * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let gold: Vec<usize> = (0..23).map(|_| rng.gen_range(0..31u32) as usize).collect();
        for metric in Metric::ALL {
            let sim = SimilarityMatrix::compute(&src, &dst, dim, metric, 2);
            let dense = rank_eval(&sim, &gold);
            for threads in [1, 2, 8] {
                let streamed = rank_eval_streaming(&src, &dst, dim, metric, &gold, threads);
                assert_eq!(dense, streamed, "{} threads={threads}", metric.label());
            }
        }
    }

    #[test]
    fn streaming_rank_eval_empty_test_set() {
        assert_eq!(
            rank_eval_streaming(&[], &[1.0, 0.0], 2, Metric::Cosine, &[], 4),
            RankEval::default()
        );
    }

    #[test]
    fn prf_computation() {
        let gold: HashSet<(u32, u32)> = [(0, 0), (1, 1), (2, 2), (3, 3)].into();
        let predicted = vec![(0, 0), (1, 1), (2, 9)];
        let s = precision_recall_f1(&predicted, &gold);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        let expect_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((s.f1 - expect_f1).abs() < 1e-12);
    }

    #[test]
    fn prf_empty_inputs() {
        let gold: HashSet<(u32, u32)> = HashSet::new();
        assert_eq!(precision_recall_f1(&[], &gold), PrfScores::default());
    }

    #[test]
    fn mean_std_aggregation() {
        let mut ms = MeanStd::new();
        ms.extend([0.5, 0.51, 0.49, 0.5, 0.5]);
        assert!((ms.mean() - 0.5).abs() < 1e-12);
        assert!(ms.std() < 0.01);
        assert_eq!(ms.len(), 5);
        let fmt = ms.paper_format();
        assert!(fmt.starts_with(".500"), "{fmt}");
        assert!(fmt.contains('±'));
    }

    #[test]
    fn single_value_has_zero_std() {
        let mut ms = MeanStd::new();
        ms.push(0.7);
        assert_eq!(ms.std(), 0.0);
    }
}
