//! Two-stage approximate nearest-neighbour search: an IVF (inverted-file)
//! partition over the target embeddings cuts each query to a few candidate
//! lists, then the exact block kernels re-rank those candidates.
//!
//! ## Why IVF
//!
//! The paper (§8) names scalability past ~100K entities as the open gap:
//! a dense sweep touches every target per query, so serving a 1M-entity KG
//! costs 1M × dim FLOPs per lookup. The two-stage path spends a tiny
//! centroid scan (`nlist` rows) to pick the `nprobe` most promising
//! partitions and only re-ranks the targets inside them — typically a few
//! percent of the corpus for >0.95 recall@10 on clustered embeddings.
//!
//! ## Exactness contract
//!
//! The second stage is *exact* on whatever candidates stage one admits:
//! per-pair scores come from the same block kernels as the dense sweep
//! (bit-identical accumulation order), and the accumulator implements the
//! shared tie rule (descending score, lowest target index wins, NaN last).
//! Therefore with `nprobe = nlist` every target is a candidate and the
//! result is **bit-identical** to the dense exact sweep — approximation
//! error comes only from partitions not probed, never from re-scoring.
//! `tests/ann_equivalence.rs` and the `openea-bench ann` gate pin this.
//!
//! ## Determinism
//!
//! The k-means build samples and initializes from a seeded [`SmallRng`] and
//! assigns points via [`TopKMatrix`] (thread- and tile-invariant), so the
//! partition — and hence every approximate answer — is a pure function of
//! `(targets, dim, metric, config)`, regardless of build thread count.
//! Queries are sequential per call; batching parallelism lives upstream.

use crate::metric::Metric;
use crate::simmat::DEFAULT_TILE;
use crate::topk::{push_topk_any, score_desc, TopKMatrix};
use openea_math::vecops;
use openea_runtime::rng::{SeedableRng, SliceRandom, SmallRng};

/// Build-time knobs for the IVF partition.
#[derive(Clone, Copy, Debug)]
pub struct AnnConfig {
    /// Number of k-means partitions; `0` picks `≈ √n` automatically.
    pub nlist: usize,
    /// Upper bound on the rows used to *train* the centroids (the final
    /// assignment always covers every target). Stride-sampled for coverage.
    pub train_sample: usize,
    /// Lloyd iterations.
    pub iters: usize,
    /// Seed for sampling and centroid initialization.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            nlist: 0,
            train_sample: 65_536,
            iters: 8,
            seed: 0x0A11,
        }
    }
}

/// An inverted-file index over one side's embeddings: `nlist` centroids,
/// CSR member lists (ids ascending within each list) and a list-contiguous,
/// tile-transposed copy of the member rows so re-ranking sweeps dense
/// dimension-major memory with the register microkernels — no per-query
/// transpose.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    dim: usize,
    metric: Metric,
    nlist: usize,
    /// The `nlist × dim` centroids as one dimension-major tile
    /// ([`vecops::transpose_tile`] layout) so probe ordering runs the
    /// transposed register kernels directly.
    centroids_t: Vec<f32>,
    /// Norms of `centroids` under `metric` (empty unless the metric needs
    /// them) — probe ordering scores centroids with the *index* metric.
    centroid_norms: Vec<f32>,
    /// CSR offsets into `ids`/`gathered_t`, length `nlist + 1`.
    offsets: Vec<usize>,
    /// Target indices, ascending within each list.
    ids: Vec<u32>,
    /// The member rows gathered list-contiguously and pre-transposed at
    /// build time into the exact [`DEFAULT_TILE`]-wide dimension-major
    /// blocks the re-rank sweep consumes: within each list, rows
    /// `[g, g1)` (stepping `DEFAULT_TILE` from the list's start) occupy
    /// `gathered_t[g*dim..g1*dim]` in [`vecops::transpose_tile`] layout.
    /// Queries then skip the per-tile transpose entirely.
    gathered_t: Vec<f32>,
    /// Norms of the gathered rows under `metric` (empty unless needed),
    /// indexed by gathered position `g`.
    gathered_norms: Vec<f32>,
}

/// The metric used to *cluster* (assignment + probe training): raw inner
/// product has no meaningful mean-centroid geometry, so it clusters by
/// cosine; every other metric clusters as itself. Probe *ordering* at query
/// time always uses the index metric, so ranking semantics never change.
fn cluster_metric(metric: Metric) -> Metric {
    match metric {
        Metric::Inner => Metric::Cosine,
        m => m,
    }
}

impl IvfIndex {
    /// Builds the partition over row-major `targets` (`n × dim`).
    ///
    /// Deterministic in `(targets, dim, metric, cfg)`; `threads` only
    /// parallelizes the k-means assignment sweeps and never changes the
    /// result (the assignment kernel is thread-invariant).
    pub fn build(
        targets: &[f32],
        dim: usize,
        metric: Metric,
        cfg: &AnnConfig,
        threads: usize,
    ) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(targets.len() % dim, 0);
        let n = targets.len() / dim;
        let nlist = if n == 0 {
            0
        } else if cfg.nlist == 0 {
            ((n as f64).sqrt().round() as usize).clamp(1, n)
        } else {
            cfg.nlist.clamp(1, n)
        };
        if nlist == 0 {
            return Self {
                dim,
                metric,
                nlist: 0,
                centroids_t: Vec::new(),
                centroid_norms: Vec::new(),
                offsets: vec![0],
                ids: Vec::new(),
                gathered_t: Vec::new(),
                gathered_norms: Vec::new(),
            };
        }
        let cmetric = cluster_metric(metric);

        // Stride-sample the training set so it covers the whole corpus, then
        // shuffle a copy to seed the initial centroids.
        let take = cfg.train_sample.max(nlist).min(n);
        let stride = n / take;
        let train_ids: Vec<usize> = (0..take).map(|t| t * stride).collect();
        let mut train = Vec::with_capacity(take * dim);
        for &i in &train_ids {
            train.extend_from_slice(&targets[i * dim..(i + 1) * dim]);
        }
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut init = train_ids.clone();
        init.shuffle(&mut rng);
        let mut centroids = Vec::with_capacity(nlist * dim);
        for &i in init.iter().take(nlist) {
            centroids.extend_from_slice(&targets[i * dim..(i + 1) * dim]);
        }

        // Lloyd iterations over the training sample. Mean updates accumulate
        // in f64 over ascending row order — deterministic by construction.
        let mut sums = vec![0f64; nlist * dim];
        let mut counts = vec![0usize; nlist];
        for _ in 0..cfg.iters {
            let assign = TopKMatrix::compute(&train, &centroids, dim, cmetric, 1, threads);
            sums.iter_mut().for_each(|s| *s = 0.0);
            counts.iter_mut().for_each(|c| *c = 0);
            for (t, row) in assign.iter_rows().enumerate() {
                let c = row[0].0 as usize;
                counts[c] += 1;
                let src = &train[t * dim..(t + 1) * dim];
                let dst = &mut sums[c * dim..(c + 1) * dim];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d += v as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue; // empty cluster keeps its previous centroid
                }
                let inv = 1.0 / counts[c] as f64;
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] * inv) as f32;
                }
            }
        }

        // Final assignment of *every* target, then CSR layout. Iterating
        // targets in ascending order keeps each list's ids ascending.
        let assign = TopKMatrix::compute(targets, &centroids, dim, cmetric, 1, threads);
        let mut list_len = vec![0usize; nlist];
        for row in assign.iter_rows() {
            list_len[row[0].0 as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0);
        for c in 0..nlist {
            offsets.push(offsets[c] + list_len[c]);
        }
        let mut cursor = offsets.clone();
        let mut ids = vec![0u32; n];
        for (i, row) in assign.iter_rows().enumerate() {
            let c = row[0].0 as usize;
            ids[cursor[c]] = i as u32;
            cursor[c] += 1;
        }
        let mut gathered = Vec::with_capacity(n * dim);
        for &i in &ids {
            let i = i as usize;
            gathered.extend_from_slice(&targets[i * dim..(i + 1) * dim]);
        }
        let centroid_norms = metric.row_norms(&centroids, dim);
        let gathered_norms = metric.row_norms(&gathered, dim);

        // Pre-transpose every re-rank tile once at build time. Blocks step
        // `DEFAULT_TILE` from each *list's* start (not the global origin) so
        // the query sweep can slice `gathered_t` with the same `[g, g1)`
        // bounds it probes with.
        let mut gathered_t = vec![0.0f32; gathered.len()];
        let mut scratch = Vec::new();
        for c in 0..nlist {
            let (lo, hi) = (offsets[c], offsets[c + 1]);
            let mut g = lo;
            while g < hi {
                let g1 = (g + DEFAULT_TILE).min(hi);
                vecops::transpose_tile(&gathered[g * dim..g1 * dim], dim, &mut scratch);
                gathered_t[g * dim..g1 * dim].copy_from_slice(&scratch);
                g = g1;
            }
        }
        let mut centroids_t = Vec::new();
        vecops::transpose_tile(&centroids, dim, &mut centroids_t);
        Self {
            dim,
            metric,
            nlist,
            centroids_t,
            centroid_norms,
            offsets,
            ids,
            gathered_t,
            gathered_norms,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of partitions (0 for an index over zero targets).
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Total indexed targets.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The default probe width: an eighth of the partitions (≥ 1). On
    /// k-means partitions of clustered embeddings this lands ≥ 0.95
    /// recall@10 (pinned by the recall regression gate) at roughly an
    /// order of magnitude fewer scored targets.
    pub fn default_nprobe(&self) -> usize {
        (self.nlist / 8).max(1)
    }

    /// Member target ids of partition `c` (ascending).
    pub fn list_ids(&self, c: usize) -> &[u32] {
        &self.ids[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Partitions in probe order for `query`: descending centroid score
    /// under the index metric, ties toward the lower partition index.
    pub fn probe_order(&self, query: &[f32]) -> Vec<u32> {
        assert_eq!(query.len(), self.dim);
        if self.nlist == 0 {
            return Vec::new();
        }
        let q_norm = if self.metric.needs_norms() {
            vecops::norm2(query)
        } else {
            0.0
        };
        let mut scores = vec![0.0f32; self.nlist];
        self.metric.similarity_block_t(
            query,
            q_norm,
            &self.centroids_t,
            &self.centroid_norms,
            &mut scores,
        );
        let mut order: Vec<u32> = (0..self.nlist as u32).collect();
        order.sort_by(|&a, &b| score_desc(scores[a as usize], scores[b as usize]).then(a.cmp(&b)));
        order
    }

    /// Two-stage top-`k` for one query: probe the `nprobe` best partitions
    /// (clamped to `[1, nlist]`), exactly re-rank their members. Answers are
    /// sorted by the shared tie rule; with `nprobe ≥ nlist` the result is
    /// bit-identical to the dense exact sweep.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<(u32, f32)> {
        self.search_counted(query, k, nprobe).0
    }

    /// [`IvfIndex::search`] also reporting how many targets were scored —
    /// the bench derives its candidate-fraction curve from this.
    pub fn search_counted(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> (Vec<(u32, f32)>, usize) {
        assert_eq!(query.len(), self.dim);
        if self.nlist == 0 || k == 0 {
            return (Vec::new(), 0);
        }
        let nprobe = nprobe.clamp(1, self.nlist);
        let order = self.probe_order(query);
        let q_norm = if self.metric.needs_norms() {
            vecops::norm2(query)
        } else {
            0.0
        };
        let mut acc: Vec<(u32, f32)> = Vec::with_capacity(k.min(self.ids.len()));
        let mut scores = vec![0.0f32; DEFAULT_TILE];
        let mut scanned = 0usize;
        for &c in &order[..nprobe] {
            let (lo, hi) = (self.offsets[c as usize], self.offsets[c as usize + 1]);
            scanned += hi - lo;
            let mut g = lo;
            while g < hi {
                let g1 = (g + DEFAULT_TILE).min(hi);
                let tile_t = &self.gathered_t[g * self.dim..g1 * self.dim];
                let tn: &[f32] = if self.gathered_norms.is_empty() {
                    &[]
                } else {
                    &self.gathered_norms[g..g1]
                };
                let block = &mut scores[..g1 - g];
                self.metric
                    .similarity_block_t(query, q_norm, tile_t, tn, block);
                for (off, &s) in block.iter().enumerate() {
                    push_topk_any(&mut acc, k, self.ids[g + off], s);
                }
                g = g1;
            }
        }
        (acc, scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::Rng;

    fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn dense_topk(src: &[f32], dst: &[f32], dim: usize, m: Metric, k: usize) -> Vec<(u32, f32)> {
        let t = TopKMatrix::compute(src, dst, dim, m, k, 1);
        t.row(0).to_vec()
    }

    #[test]
    fn all_probes_match_dense_sweep_bitwise() {
        let dst = embeddings(137, 6, 11);
        let queries = embeddings(5, 6, 12);
        for metric in Metric::ALL {
            let ix = IvfIndex::build(&dst, 6, metric, &AnnConfig::default(), 2);
            for q in 0..5 {
                let query = &queries[q * 6..(q + 1) * 6];
                let got = ix.search(query, 9, ix.nlist());
                let want = dense_topk(query, &dst, 6, metric, 9);
                assert_eq!(got.len(), want.len(), "{}", metric.label());
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.0, b.0, "{}", metric.label());
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{}", metric.label());
                }
            }
        }
    }

    #[test]
    fn partitions_cover_every_target_exactly_once() {
        let dst = embeddings(200, 4, 3);
        let ix = IvfIndex::build(&dst, 4, Metric::Cosine, &AnnConfig::default(), 1);
        let mut seen: Vec<u32> = (0..ix.nlist())
            .flat_map(|c| ix.list_ids(c).to_vec())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200u32).collect::<Vec<_>>());
        // Within every list the ids ascend.
        for c in 0..ix.nlist() {
            let l = ix.list_ids(c);
            assert!(l.windows(2).all(|w| w[0] < w[1]), "list {c} not ascending");
        }
    }

    #[test]
    fn build_is_thread_invariant() {
        let dst = embeddings(150, 5, 7);
        let a = IvfIndex::build(&dst, 5, Metric::Euclidean, &AnnConfig::default(), 1);
        let b = IvfIndex::build(&dst, 5, Metric::Euclidean, &AnnConfig::default(), 8);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.centroids_t, b.centroids_t);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let ix = IvfIndex::build(&[], 3, Metric::Cosine, &AnnConfig::default(), 1);
        assert_eq!(ix.nlist(), 0);
        assert!(ix.search(&[0.0, 0.0, 0.0], 5, 4).is_empty());
        assert!(ix.probe_order(&[0.0, 0.0, 0.0]).is_empty());

        let one = embeddings(1, 3, 9);
        let ix = IvfIndex::build(&one, 3, Metric::Inner, &AnnConfig::default(), 1);
        assert_eq!(ix.nlist(), 1);
        let ans = ix.search(&[1.0, 0.0, -1.0], 4, 99);
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].0, 0);
    }

    #[test]
    fn fewer_probes_scan_fewer_targets() {
        let dst = embeddings(500, 4, 21);
        let ix = IvfIndex::build(
            &dst,
            4,
            Metric::Cosine,
            &AnnConfig {
                nlist: 16,
                ..Default::default()
            },
            1,
        );
        let q = &dst[..4];
        let (_, all) = ix.search_counted(q, 10, ix.nlist());
        let (_, few) = ix.search_counted(q, 10, 2);
        assert_eq!(all, 500);
        assert!(few < all, "{few} vs {all}");
        assert!(few > 0);
    }

    #[test]
    fn probed_subset_is_consistent_with_probe_order() {
        // An nprobe-limited answer only contains ids from the probed lists,
        // and equals the dense top-k restricted to that candidate set.
        let dst = embeddings(300, 4, 33);
        let ix = IvfIndex::build(
            &dst,
            4,
            Metric::Manhattan,
            &AnnConfig {
                nlist: 8,
                ..Default::default()
            },
            1,
        );
        let q = embeddings(1, 4, 34);
        let nprobe = 3;
        let order = ix.probe_order(&q);
        let mut allowed: Vec<u32> = order[..nprobe]
            .iter()
            .flat_map(|&c| ix.list_ids(c as usize).to_vec())
            .collect();
        allowed.sort_unstable();
        let got = ix.search(&q, 7, nprobe);
        for &(id, _) in &got {
            assert!(allowed.binary_search(&id).is_ok(), "id {id} not probed");
        }
        // Reference: exact scores on the allowed subset, shared tie rule.
        let mut reference: Vec<(u32, f32)> = allowed
            .iter()
            .map(|&j| {
                let row = &dst[j as usize * 4..(j as usize + 1) * 4];
                (j, Metric::Manhattan.similarity(&q, row))
            })
            .collect();
        reference.sort_by(|a, b| score_desc(a.1, b.1).then(a.0.cmp(&b.0)));
        reference.truncate(7);
        assert_eq!(got, reference);
    }

    #[test]
    fn nlist_clamps_to_target_count() {
        let dst = embeddings(3, 2, 40);
        let ix = IvfIndex::build(
            &dst,
            2,
            Metric::Cosine,
            &AnnConfig {
                nlist: 64,
                ..Default::default()
            },
            1,
        );
        assert_eq!(ix.nlist(), 3);
        assert!(ix.default_nprobe() >= 1);
    }
}
