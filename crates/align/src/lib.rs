//! # openea-align
//!
//! The alignment module of the framework (paper Sect. 2.2.2 and Sect. 6.1):
//!
//! * similarity metrics — cosine, Euclidean, Manhattan — plus **CSLS**
//!   (cross-domain similarity local scaling), which counteracts hubness;
//! * alignment-inference strategies — greedy nearest neighbour, **stable
//!   marriage**, Kuhn–Munkres maximum-weight matching and a linear-time
//!   greedy collective heuristic;
//! * evaluation — Hits@m, MR, MRR, precision/recall/F1, fold aggregation;
//! * geometric analysis — top-k similarity distributions (Figure 9),
//!   hubness/isolation statistics (Figure 10), degree-bucket recall
//!   (Figure 5) and the three-way overlap breakdown (Figure 12).

pub mod analysis;
pub mod ann;
pub mod blocking;
pub mod eval;
pub mod infer;
pub mod metric;
pub mod simmat;
pub mod sinkhorn;
pub mod topk;

pub use analysis::{
    degree_bucket_recall, hubness_profile, overlap3, topk_similarity_profile, HubnessProfile,
    OverlapBreakdown,
};
pub use ann::{AnnConfig, IvfIndex};
pub use blocking::{blocked_greedy_match, BlockedMatch, LshIndex};
pub use eval::{precision_recall_f1, rank_eval, rank_eval_streaming, MeanStd, PrfScores, RankEval};
pub use infer::{
    greedy_collective, greedy_match, greedy_match_topk, hungarian, stable_marriage,
    stable_marriage_topk,
};
pub use metric::Metric;
pub use simmat::{SimilarityMatrix, DEFAULT_TILE};
pub use sinkhorn::{
    sinkhorn_match, sinkhorn_match_topk, sinkhorn_plan, sinkhorn_plan_topk, SinkhornConfig,
};
pub use topk::{csls_topk, TopKMatrix};
