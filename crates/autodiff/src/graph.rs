//! The tape: eager graph construction + reverse-mode differentiation.
//!
//! Nodes are appended in topological order, so the backward pass is a single
//! reverse sweep. Every operation the deep models need is implemented here
//! and validated against finite differences in the test module.
//!
//! ```
//! use openea_autodiff::{Graph, Tensor};
//!
//! // d/dx sum(tanh(x·w)) at x = [1, 2], w = [[1], [−1]]
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
//! let w = g.leaf(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
//! let y = g.matmul(x, w);
//! let t = g.tanh(y);
//! let loss = g.sum(t);
//! g.backward(loss);
//! let gx = g.grad(x);
//! assert_eq!(gx.rows, 1);
//! assert_eq!(gx.cols, 2);
//! assert!(gx.data[0] > 0.0 && gx.data[1] < 0.0);
//! ```

use crate::sparse::SparseMatrix;
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    Add(Var, Var),
    /// `[n,c] + [1,c]` broadcast over rows.
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[n,c] ⊙ [1,c]` broadcast over rows.
    MulRow(Var, Var),
    Scale(Var, f32),
    Matmul(Var, Var),
    /// Constant sparse matrix × dense var.
    Spmm(usize, Var),
    Gather(Var, Vec<u32>),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Abs(Var),
    Sum(Var),
    Mean(Var),
    /// Row-wise sum: `[n,c] → [n,1]`.
    SumRows(Var),
    /// Column concatenation.
    Concat(Var, Var),
    Reshape(Var),
    /// Mean softmax cross-entropy of logits `[n,c]` against target columns.
    SoftmaxCe(Var, Vec<u32>),
    /// Valid-padding single-channel conv: input `[n, h·w]`, filters `[k, kh·kw]`.
    Conv2d {
        input: Var,
        filters: Var,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
    },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// The autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    sparse: Vec<SparseMatrix>,
}

impl Graph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for the next step (sparse constants are kept).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Registers a constant sparse matrix; returns its id for [`Graph::spmm`].
    pub fn add_sparse(&mut self, m: SparseMatrix) -> usize {
        self.sparse.push(m);
        self.sparse.len() - 1
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// A leaf tensor (input or parameter snapshot).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` target with respect to `v`
    /// (zeros if the node is unreachable from the target).
    pub fn grad(&self, v: Var) -> Tensor {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[v.0].value.rows, self.nodes[v.0].value.cols),
        }
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert!(ta.same_shape(tb), "add shape mismatch");
        let data = ta.data.iter().zip(&tb.data).map(|(x, y)| x + y).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Add(a, b))
    }

    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (ta, tr) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(tr.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(ta.cols, tr.cols, "add_row width mismatch");
        let mut out = ta.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&tr.data) {
                *o += b;
            }
        }
        self.push(out, Op::AddRow(a, row))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert!(ta.same_shape(tb), "sub shape mismatch");
        let data = ta.data.iter().zip(&tb.data).map(|(x, y)| x - y).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert!(ta.same_shape(tb), "mul shape mismatch");
        let data = ta.data.iter().zip(&tb.data).map(|(x, y)| x * y).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Mul(a, b))
    }

    pub fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let (ta, tr) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(tr.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(ta.cols, tr.cols, "mul_row width mismatch");
        let mut out = ta.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&tr.data) {
                *o *= b;
            }
        }
        self.push(out, Op::MulRow(a, row))
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let ta = &self.nodes[a.0].value;
        let data = ta.data.iter().map(|x| x * s).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Scale(a, s))
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.cols, tb.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(ta.rows, tb.cols);
        for i in 0..ta.rows {
            for k in 0..ta.cols {
                let av = ta.get(i, k);
                if av == 0.0 {
                    continue;
                }
                let brow = tb.row(k);
                let orow = out.row_mut(i);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        self.push(out, Op::Matmul(a, b))
    }

    pub fn spmm(&mut self, sparse_id: usize, b: Var) -> Var {
        let out = self.sparse[sparse_id].matmul(&self.nodes[b.0].value);
        self.push(out, Op::Spmm(sparse_id, b))
    }

    /// Row gather: output row `i` is input row `idx[i]`.
    pub fn gather(&mut self, a: Var, idx: Vec<u32>) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut out = Tensor::zeros(idx.len(), ta.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(ta.row(r as usize));
        }
        self.push(out, Op::Gather(a, idx))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let data = ta
            .data
            .iter()
            .map(|&x| {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            })
            .collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Sigmoid(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let data = ta.data.iter().map(|x| x.tanh()).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Tanh(a))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let data = ta.data.iter().map(|x| x.max(0.0)).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Relu(a))
    }

    pub fn abs(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let data = ta.data.iter().map(|x| x.abs()).collect();
        let t = Tensor::from_vec(ta.rows, ta.cols, data);
        self.push(t, Op::Abs(a))
    }

    pub fn sum(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.data.iter().sum();
        self.push(Tensor::scalar(s), Op::Sum(a))
    }

    pub fn mean(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let s: f32 = ta.data.iter().sum::<f32>() / ta.len().max(1) as f32;
        self.push(Tensor::scalar(s), Op::Mean(a))
    }

    pub fn sum_rows(&mut self, a: Var) -> Var {
        let ta = &self.nodes[a.0].value;
        let mut out = Tensor::zeros(ta.rows, 1);
        for i in 0..ta.rows {
            out.data[i] = ta.row(i).iter().sum();
        }
        self.push(out, Op::SumRows(a))
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.rows, tb.rows, "concat row mismatch");
        let mut out = Tensor::zeros(ta.rows, ta.cols + tb.cols);
        for i in 0..ta.rows {
            out.row_mut(i)[..ta.cols].copy_from_slice(ta.row(i));
        }
        for i in 0..tb.rows {
            let c0 = ta.cols;
            out.row_mut(i)[c0..].copy_from_slice(tb.row(i));
        }
        self.push(out, Op::Concat(a, b))
    }

    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let ta = &self.nodes[a.0].value;
        assert_eq!(ta.len(), rows * cols, "reshape size mismatch");
        let t = Tensor::from_vec(rows, cols, ta.data.clone());
        self.push(t, Op::Reshape(a))
    }

    /// Mean softmax cross-entropy of `logits` `[n,c]` against `targets[i] < c`.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: Vec<u32>) -> Var {
        let tl = &self.nodes[logits.0].value;
        assert_eq!(tl.rows, targets.len(), "one target per row");
        let mut loss = 0.0f64;
        for (i, &t) in targets.iter().enumerate() {
            let row = tl.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            loss += (lse - row[t as usize]) as f64;
        }
        let t = Tensor::scalar((loss / targets.len().max(1) as f64) as f32);
        self.push(t, Op::SoftmaxCe(logits, targets))
    }

    /// Single-channel valid convolution (used by ConvE).
    pub fn conv2d(
        &mut self,
        input: Var,
        filters: Var,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
    ) -> Var {
        let (ti, tf) = (&self.nodes[input.0].value, &self.nodes[filters.0].value);
        assert_eq!(ti.cols, h * w, "conv input shape");
        assert_eq!(tf.cols, kh * kw, "conv filter shape");
        let (oh, ow) = (h - kh + 1, w - kw + 1);
        let k = tf.rows;
        let mut out = Tensor::zeros(ti.rows, k * oh * ow);
        for n in 0..ti.rows {
            let img = ti.row(n);
            for f in 0..k {
                let filt = tf.row(f);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for fy in 0..kh {
                            for fx in 0..kw {
                                acc += img[(oy + fy) * w + (ox + fx)] * filt[fy * kw + fx];
                            }
                        }
                        out.row_mut(n)[f * oh * ow + oy * ow + ox] = acc;
                    }
                }
            }
        }
        self.push(
            out,
            Op::Conv2d {
                input,
                filters,
                h,
                w,
                kh,
                kw,
            },
        )
    }

    /// Runs the reverse pass from scalar node `target`.
    pub fn backward(&mut self, target: Var) {
        assert_eq!(
            self.nodes[target.0].value.len(),
            1,
            "backward target must be scalar"
        );
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[target.0].grad = Some(Tensor::scalar(1.0));

        for id in (0..=target.0).rev() {
            let Some(g) = self.nodes[id].grad.clone() else {
                continue;
            };
            let op = self.nodes[id].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accum(a, &g);
                    self.accum(b, &g);
                }
                Op::AddRow(a, row) => {
                    self.accum(a, &g);
                    let mut rg = Tensor::zeros(1, g.cols);
                    for i in 0..g.rows {
                        for (o, &x) in rg.data.iter_mut().zip(g.row(i)) {
                            *o += x;
                        }
                    }
                    self.accum(row, &rg);
                }
                Op::Sub(a, b) => {
                    self.accum(a, &g);
                    let neg = Tensor::from_vec(g.rows, g.cols, g.data.iter().map(|x| -x).collect());
                    self.accum(b, &neg);
                }
                Op::Mul(a, b) => {
                    let ga = {
                        let tb = &self.nodes[b.0].value;
                        Tensor::from_vec(
                            g.rows,
                            g.cols,
                            g.data.iter().zip(&tb.data).map(|(x, y)| x * y).collect(),
                        )
                    };
                    let gb = {
                        let ta = &self.nodes[a.0].value;
                        Tensor::from_vec(
                            g.rows,
                            g.cols,
                            g.data.iter().zip(&ta.data).map(|(x, y)| x * y).collect(),
                        )
                    };
                    self.accum(a, &ga);
                    self.accum(b, &gb);
                }
                Op::MulRow(a, row) => {
                    let (ga, gr) = {
                        let ta = &self.nodes[a.0].value;
                        let tr = &self.nodes[row.0].value;
                        let mut ga = Tensor::zeros(g.rows, g.cols);
                        let mut gr = Tensor::zeros(1, g.cols);
                        for i in 0..g.rows {
                            for j in 0..g.cols {
                                ga.row_mut(i)[j] = g.get(i, j) * tr.data[j];
                                gr.data[j] += g.get(i, j) * ta.get(i, j);
                            }
                        }
                        (ga, gr)
                    };
                    self.accum(a, &ga);
                    self.accum(row, &gr);
                }
                Op::Scale(a, s) => {
                    let ga =
                        Tensor::from_vec(g.rows, g.cols, g.data.iter().map(|x| x * s).collect());
                    self.accum(a, &ga);
                }
                Op::Matmul(a, b) => {
                    // dA = g · Bᵀ ; dB = Aᵀ · g
                    let (ga, gb) = {
                        let ta = &self.nodes[a.0].value;
                        let tb = &self.nodes[b.0].value;
                        let mut ga = Tensor::zeros(ta.rows, ta.cols);
                        for i in 0..ta.rows {
                            for j in 0..tb.cols {
                                let gv = g.get(i, j);
                                if gv == 0.0 {
                                    continue;
                                }
                                for k in 0..ta.cols {
                                    ga.row_mut(i)[k] += gv * tb.get(k, j);
                                }
                            }
                        }
                        let mut gb = Tensor::zeros(tb.rows, tb.cols);
                        for i in 0..ta.rows {
                            for k in 0..ta.cols {
                                let av = ta.get(i, k);
                                if av == 0.0 {
                                    continue;
                                }
                                for (o, &gv) in gb.row_mut(k).iter_mut().zip(g.row(i)) {
                                    *o += av * gv;
                                }
                            }
                        }
                        (ga, gb)
                    };
                    self.accum(a, &ga);
                    self.accum(b, &gb);
                }
                Op::Spmm(s, b) => {
                    let gb = self.sparse[s].matmul_t(&g);
                    self.accum(b, &gb);
                }
                Op::Gather(a, idx) => {
                    let ta_cols = self.nodes[a.0].value.cols;
                    let ta_rows = self.nodes[a.0].value.rows;
                    let mut ga = Tensor::zeros(ta_rows, ta_cols);
                    for (i, &r) in idx.iter().enumerate() {
                        for (o, &x) in ga.row_mut(r as usize).iter_mut().zip(g.row(i)) {
                            *o += x;
                        }
                    }
                    self.accum(a, &ga);
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[id].value;
                    let ga = Tensor::from_vec(
                        g.rows,
                        g.cols,
                        g.data
                            .iter()
                            .zip(&y.data)
                            .map(|(gv, yv)| gv * yv * (1.0 - yv))
                            .collect(),
                    );
                    self.accum(a, &ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[id].value;
                    let ga = Tensor::from_vec(
                        g.rows,
                        g.cols,
                        g.data
                            .iter()
                            .zip(&y.data)
                            .map(|(gv, yv)| gv * (1.0 - yv * yv))
                            .collect(),
                    );
                    self.accum(a, &ga);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = Tensor::from_vec(
                        g.rows,
                        g.cols,
                        g.data
                            .iter()
                            .zip(&x.data)
                            .map(|(gv, xv)| if *xv > 0.0 { *gv } else { 0.0 })
                            .collect(),
                    );
                    self.accum(a, &ga);
                }
                Op::Abs(a) => {
                    let x = &self.nodes[a.0].value;
                    let ga = Tensor::from_vec(
                        g.rows,
                        g.cols,
                        g.data
                            .iter()
                            .zip(&x.data)
                            .map(|(gv, xv)| gv * xv.signum())
                            .collect(),
                    );
                    self.accum(a, &ga);
                }
                Op::Sum(a) => {
                    let ta = &self.nodes[a.0].value;
                    let ga = Tensor::from_vec(ta.rows, ta.cols, vec![g.item(); ta.len()]);
                    self.accum(a, &ga);
                }
                Op::Mean(a) => {
                    let ta = &self.nodes[a.0].value;
                    let v = g.item() / ta.len().max(1) as f32;
                    let ga = Tensor::from_vec(ta.rows, ta.cols, vec![v; ta.len()]);
                    self.accum(a, &ga);
                }
                Op::SumRows(a) => {
                    let ta = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(ta.rows, ta.cols);
                    for i in 0..ta.rows {
                        let gv = g.data[i];
                        ga.row_mut(i).fill(gv);
                    }
                    self.accum(a, &ga);
                }
                Op::Concat(a, b) => {
                    let ca = self.nodes[a.0].value.cols;
                    let cb = self.nodes[b.0].value.cols;
                    let mut ga = Tensor::zeros(g.rows, ca);
                    let mut gb = Tensor::zeros(g.rows, cb);
                    for i in 0..g.rows {
                        ga.row_mut(i).copy_from_slice(&g.row(i)[..ca]);
                        gb.row_mut(i).copy_from_slice(&g.row(i)[ca..]);
                    }
                    self.accum(a, &ga);
                    self.accum(b, &gb);
                }
                Op::Reshape(a) => {
                    let ta = &self.nodes[a.0].value;
                    let ga = Tensor::from_vec(ta.rows, ta.cols, g.data.clone());
                    self.accum(a, &ga);
                }
                Op::SoftmaxCe(logits, targets) => {
                    let tl = &self.nodes[logits.0].value;
                    let n = targets.len().max(1) as f32;
                    let scale = g.item() / n;
                    let mut gl = Tensor::zeros(tl.rows, tl.cols);
                    for (i, &t) in targets.iter().enumerate() {
                        let row = tl.row(i);
                        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
                        let z: f32 = exps.iter().sum();
                        let grow = gl.row_mut(i);
                        for (j, e) in exps.iter().enumerate() {
                            grow[j] = scale * (e / z - if j == t as usize { 1.0 } else { 0.0 });
                        }
                    }
                    self.accum(logits, &gl);
                }
                Op::Conv2d {
                    input,
                    filters,
                    h,
                    w,
                    kh,
                    kw,
                } => {
                    let (gi, gf) = {
                        let ti = &self.nodes[input.0].value;
                        let tf = &self.nodes[filters.0].value;
                        let (oh, ow) = (h - kh + 1, w - kw + 1);
                        let k = tf.rows;
                        let mut gi = Tensor::zeros(ti.rows, ti.cols);
                        let mut gf = Tensor::zeros(tf.rows, tf.cols);
                        for n in 0..ti.rows {
                            let img = ti.row(n);
                            let gout = g.row(n);
                            for f in 0..k {
                                let filt = tf.row(f);
                                for oy in 0..oh {
                                    for ox in 0..ow {
                                        let gv = gout[f * oh * ow + oy * ow + ox];
                                        if gv == 0.0 {
                                            continue;
                                        }
                                        for fy in 0..kh {
                                            for fx in 0..kw {
                                                gi.row_mut(n)[(oy + fy) * w + (ox + fx)] +=
                                                    gv * filt[fy * kw + fx];
                                                gf.row_mut(f)[fy * kw + fx] +=
                                                    gv * img[(oy + fy) * w + (ox + fx)];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        (gi, gf)
                    };
                    self.accum(input, &gi);
                    self.accum(filters, &gf);
                }
            }
        }
    }

    fn accum(&mut self, v: Var, g: &Tensor) {
        let node = &mut self.nodes[v.0];
        match &mut node.grad {
            Some(existing) => {
                for (e, &x) in existing.data.iter_mut().zip(&g.data) {
                    *e += x;
                }
            }
            None => node.grad = Some(g.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SmallRng;
    use openea_runtime::rng::{Rng, SeedableRng};

    /// Finite-difference check: builds the graph twice per perturbed input
    /// via `f`, compares numeric and analytic gradients of the first leaf.
    fn grad_check(build: impl Fn(&mut Graph, &Tensor) -> Var, x0: Tensor) {
        let mut g = Graph::new();
        let loss = build(&mut g, &x0);
        g.backward(loss);
        // Find the leaf holding x0 (first node).
        let analytic = g.grad(Var(0));
        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data[i] += eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, &xp);
            let fp = gp.value(lp).item();
            let mut xm = x0.clone();
            xm.data[i] -= eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, &xm);
            let fm = gm.value(lm).item();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "component {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn rand_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed);
        Tensor::random_uniform(rows, cols, 1.0, &mut rng)
    }

    #[test]
    fn grad_add_mul_chain() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                let b = g.leaf(rand_tensor(2, 3, 100));
                let s = g.add(a, b);
                let m = g.mul(s, a);
                g.sum(m)
            },
            rand_tensor(2, 3, 1),
        );
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                let b = g.leaf(rand_tensor(3, 2, 101));
                let m = g.matmul(a, b);
                g.sum(m)
            },
            rand_tensor(2, 3, 2),
        );
        // Also check the right operand.
        grad_check(
            |g, x| {
                let b = g.leaf(x.clone());
                let a = g.leaf(rand_tensor(2, 3, 102));
                let m = g.matmul(a, b);
                let t = g.tanh(m);
                g.sum(t)
            },
            rand_tensor(3, 2, 3),
        );
    }

    #[test]
    fn grad_activations() {
        for act in 0..4 {
            grad_check(
                move |g, x| {
                    let a = g.leaf(x.clone());
                    let y = match act {
                        0 => g.sigmoid(a),
                        1 => g.tanh(a),
                        2 => g.relu(a),
                        _ => g.abs(a),
                    };
                    g.sum(y)
                },
                // Stay away from relu/abs kinks.
                Tensor::from_vec(2, 2, vec![0.5, -0.7, 1.2, -0.3]),
            );
        }
    }

    #[test]
    fn grad_broadcast_ops() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                let r = g.leaf(rand_tensor(1, 3, 103));
                let y = g.add_row(a, r);
                let z = g.mul_row(y, r);
                g.mean(z)
            },
            rand_tensor(4, 3, 4),
        );
        // Gradient w.r.t. the broadcast row itself.
        grad_check(
            |g, x| {
                let r = g.leaf(x.clone());
                let a = g.leaf(rand_tensor(4, 3, 104));
                let y = g.mul_row(a, r);
                g.sum(y)
            },
            rand_tensor(1, 3, 5),
        );
    }

    #[test]
    fn grad_gather_scatters_back() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                let picked = g.gather(a, vec![0, 2, 2]);
                let s = g.mul(picked, picked);
                g.sum(s)
            },
            rand_tensor(3, 2, 6),
        );
    }

    #[test]
    fn grad_spmm() {
        let sp = SparseMatrix::from_triplets(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.5)]);
        grad_check(
            move |g, x| {
                let id = g.add_sparse(sp.clone());
                let a = g.leaf(x.clone());
                let y = g.spmm(id, a);
                let t = g.tanh(y);
                g.sum(t)
            },
            rand_tensor(3, 2, 7),
        );
    }

    #[test]
    fn grad_softmax_ce() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                g.softmax_cross_entropy(a, vec![1, 0])
            },
            rand_tensor(2, 4, 8),
        );
    }

    #[test]
    fn grad_conv2d() {
        // 3x3 image, 2 filters of 2x2.
        grad_check(
            |g, x| {
                let img = g.leaf(x.clone());
                let f = g.leaf(rand_tensor(2, 4, 105));
                let y = g.conv2d(img, f, 3, 3, 2, 2);
                let t = g.tanh(y);
                g.sum(t)
            },
            rand_tensor(2, 9, 9),
        );
        // Filter gradients.
        grad_check(
            |g, x| {
                let f = g.leaf(x.clone());
                let img = g.leaf(rand_tensor(2, 9, 106));
                let y = g.conv2d(img, f, 3, 3, 2, 2);
                g.sum(y)
            },
            rand_tensor(2, 4, 10),
        );
    }

    #[test]
    fn grad_concat_reshape_sumrows() {
        grad_check(
            |g, x| {
                let a = g.leaf(x.clone());
                let b = g.leaf(rand_tensor(2, 2, 107));
                let c = g.concat_cols(a, b);
                let r = g.reshape(c, 1, 10);
                let m = g.mul(r, r);
                let s = g.sum_rows(m);
                g.sum(s)
            },
            rand_tensor(2, 3, 11),
        );
    }

    #[test]
    fn softmax_ce_value_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]));
        let loss = g.softmax_cross_entropy(logits, vec![2]);
        let z = (1.0f64.exp() + 2.0f64.exp() + 3.0f64.exp()).ln();
        assert!((g.value(loss).item() as f64 - (z - 3.0)).abs() < 1e-5);
    }

    #[test]
    fn unreachable_nodes_have_zero_grad() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::scalar(2.0));
        let b = g.leaf(Tensor::scalar(5.0));
        let y = g.mul(a, a);
        g.backward(y);
        assert_eq!(g.grad(b).item(), 0.0);
        assert!((g.grad(a).item() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_descent_on_tape_converges() {
        // Fit w in y = x·w to a target by re-taping every step.
        let mut rng = SmallRng::seed_from_u64(42);
        let x = Tensor::random_uniform(8, 3, 1.0, &mut rng);
        let w_true = Tensor::random_uniform(3, 1, 1.0, &mut rng);
        let mut g0 = Graph::new();
        let xv = g0.leaf(x.clone());
        let wv = g0.leaf(w_true.clone());
        let yv = g0.matmul(xv, wv);
        let y = g0.value(yv).clone();

        let mut w = Tensor::random_uniform(3, 1, 0.1, &mut rng);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(w.clone());
            let yv = g.leaf(y.clone());
            let pred = g.matmul(xv, wv);
            let diff = g.sub(pred, yv);
            let sq = g.mul(diff, diff);
            let loss = g.mean(sq);
            g.backward(loss);
            last = g.value(loss).item();
            let gw = g.grad(wv);
            for (wi, gi) in w.data.iter_mut().zip(&gw.data) {
                *wi -= 0.5 * gi;
            }
        }
        assert!(last < 1e-4, "final loss {last}");
        let _ = rng.gen::<f32>();
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_on_matrix_panics() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(2, 2));
        g.backward(a);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use openea_runtime::testkit::prelude::*;

    props! {
        #![cases = 24]

        /// A randomly-composed chain of elementwise ops matches finite
        /// differences on every input component.
        #[test]
        fn random_elementwise_chains_differentiate_correctly(
            x0 in vec_of(-1.5f32..1.5, 4),
            ops in vec_of(0u8..4, 1..5),
        ) {
            let build = |g: &mut Graph, x: &Tensor| {
                let mut v = g.leaf(x.clone());
                for &op in &ops {
                    v = match op {
                        0 => g.sigmoid(v),
                        1 => g.tanh(v),
                        2 => g.scale(v, 0.5),
                        _ => g.mul(v, v),
                    };
                }
                g.sum(v)
            };
            let x = Tensor::from_vec(1, 4, x0.clone());
            let mut g = Graph::new();
            let loss = build(&mut g, &x);
            g.backward(loss);
            let analytic = g.grad(Var(0));
            let eps = 1e-3;
            for i in 0..4 {
                let mut xp = x.clone();
                xp.data[i] += eps;
                let mut xm = x.clone();
                xm.data[i] -= eps;
                let mut gp = Graph::new();
                let lp = build(&mut gp, &xp);
                let mut gm = Graph::new();
                let lm = build(&mut gm, &xm);
                let numeric = (gp.value(lp).item() - gm.value(lm).item()) / (2.0 * eps);
                let a = analytic.data[i];
                prop_assert!(
                    (a - numeric).abs() < 3e-2 * (1.0 + a.abs().max(numeric.abs())),
                    "component {i}: analytic {a} vs numeric {numeric} (ops {ops:?})"
                );
            }
        }
    }
}
