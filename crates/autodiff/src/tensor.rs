//! Dense 2-D `f32` tensors (matrices). Scalars are `1×1`, row vectors `1×n`.

use openea_runtime::rng::Rng;

/// A dense row-major 2-D tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    pub fn random_uniform<R: Rng>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot uniform init.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Self::random_uniform(rows, cols, scale, rng)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The scalar value of a `1×1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a scalar tensor");
        self.data[0]
    }

    pub fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar tensor")]
    fn item_on_matrix_panics() {
        let _ = Tensor::zeros(2, 2).item();
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(0);
        let t = Tensor::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(t.data.iter().all(|&x| x.abs() <= bound + 1e-6));
    }
}
