//! A constant CSR sparse matrix, used for the normalized adjacency `Â` in
//! graph-convolution layers. Sparse matrices carry no gradient; only the
//! dense operand of an `spmm` is differentiated.

use crate::tensor::Tensor;

/// Compressed sparse row matrix with `f32` values.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from triplets `(row, col, value)`; duplicate entries are summed.
    pub fn from_triplets(rows: usize, cols: usize, mut triplets: Vec<(u32, u32, f32)>) -> Self {
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut counts = vec![0usize; rows];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet out of range"
            );
            if prev == Some((r, c)) {
                *values.last_mut().expect("previous value") += v;
            } else {
                counts[r as usize] += 1;
                col_idx.push(c);
                values.push(v);
                prev = Some((r, c));
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for r in 0..rows {
            row_ptr[r + 1] = row_ptr[r] + counts[r];
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Row-normalized adjacency with self-loops: `D̂^(−1/2)·(A+I)·D̂^(−1/2)`,
    /// the GCN propagation matrix of Eq. 3, built from undirected edges.
    pub fn gcn_normalized(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let weighted: Vec<(u32, u32, f32)> = edges.iter().map(|&(a, b)| (a, b, 1.0)).collect();
        Self::gcn_normalized_weighted(num_nodes, &weighted)
    }

    /// Weighted variant of [`SparseMatrix::gcn_normalized`]: edge weights are
    /// kept (duplicates take the maximum), self-loops have weight 1.
    pub fn gcn_normalized_weighted(num_nodes: usize, edges: &[(u32, u32, f32)]) -> Self {
        let mut weights: std::collections::HashMap<(u32, u32), f32> =
            std::collections::HashMap::with_capacity(edges.len() * 2);
        for &(a, b, w) in edges {
            if a == b {
                continue;
            }
            let e1 = weights.entry((a, b)).or_insert(0.0);
            *e1 = e1.max(w);
            let e2 = weights.entry((b, a)).or_insert(0.0);
            *e2 = e2.max(w);
        }
        let mut triplets: Vec<(u32, u32, f32)> =
            weights.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        for i in 0..num_nodes as u32 {
            triplets.push((i, i, 1.0));
        }
        // Degrees of Â = A + I.
        let mut deg = vec![0.0f64; num_nodes];
        for &(r, _, v) in &triplets {
            deg[r as usize] += v as f64;
        }
        for t in &mut triplets {
            let d = (deg[t.0 as usize] * deg[t.1 as usize]).sqrt().max(1e-12);
            t.2 /= d as f32;
        }
        Self::from_triplets(num_nodes, num_nodes, triplets)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Dense product `self · m`.
    pub fn matmul(&self, m: &Tensor) -> Tensor {
        assert_eq!(self.cols, m.rows, "spmm shape mismatch");
        let mut out = Tensor::zeros(self.rows, m.cols);
        for r in 0..self.rows {
            let out_row = out.row_mut(r);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let v = self.values[k];
                for (o, &x) in out_row.iter_mut().zip(m.row(c)) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// Transposed product `selfᵀ · m` (used in the backward pass of `spmm`).
    pub fn matmul_t(&self, m: &Tensor) -> Tensor {
        assert_eq!(self.rows, m.rows, "spmmᵀ shape mismatch");
        let mut out = Tensor::zeros(self.cols, m.cols);
        for r in 0..self.rows {
            let m_row = m.row(r);
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let v = self.values[k];
                let out_row = out.row_mut(c);
                for (o, &x) in out_row.iter_mut().zip(m_row) {
                    *o += v * x;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_construction_and_product() {
        // [[1, 2], [0, 3]]
        let s = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        assert_eq!(s.nnz(), 3);
        let x = Tensor::from_vec(2, 1, vec![10.0, 20.0]);
        let y = s.matmul(&x);
        assert_eq!(y.data, vec![50.0, 60.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let s = SparseMatrix::from_triplets(1, 1, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(s.nnz(), 1);
        let y = s.matmul(&Tensor::scalar(2.0));
        assert_eq!(y.item(), 7.0);
    }

    #[test]
    fn transpose_product_matches_dense() {
        // s = [[1, 2], [3, 0]]; sᵀ·x with x = [1, 1]ᵀ gives [4, 2]ᵀ.
        let s = SparseMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        let x = Tensor::from_vec(2, 1, vec![1.0, 1.0]);
        let y = s.matmul_t(&x);
        assert_eq!(y.data, vec![4.0, 2.0]);
    }

    #[test]
    fn gcn_normalization_rows_behave() {
        // Path graph 0-1-2.
        let s = SparseMatrix::gcn_normalized(3, &[(0, 1), (1, 2)]);
        // Rows of D̂^(−1/2)·Â·D̂^(−1/2) are positive and close to stochastic
        // (symmetric normalization bounds them near 1, not exactly at 1).
        let ones = Tensor::from_vec(3, 1, vec![1.0; 3]);
        let y = s.matmul(&ones);
        for &v in &y.data {
            assert!(v > 0.0 && v <= 1.3, "row sum {v}");
        }
        // Symmetric normalization: entry (0,1) equals entry (1,0).
        let e01 = {
            let mut x = Tensor::zeros(3, 1);
            x.data[1] = 1.0;
            s.matmul(&x).data[0]
        };
        let e10 = {
            let mut x = Tensor::zeros(3, 1);
            x.data[0] = 1.0;
            s.matmul(&x).data[1]
        };
        assert!((e01 - e10).abs() < 1e-6);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = SparseMatrix::from_triplets(3, 2, vec![(2, 1, 4.0)]);
        let x = Tensor::from_vec(2, 1, vec![1.0, 1.0]);
        let y = s.matmul(&x);
        assert_eq!(y.data, vec![0.0, 0.0, 4.0]);
    }
}
