//! # openea-autodiff
//!
//! A minimal tape-based reverse-mode automatic-differentiation engine for the
//! deep models in OpenEA-rs (GCN variants, the recurrent skipping network,
//! ProjE and ConvE). Tensors are dense 2-D `f32` matrices; graphs are built
//! eagerly on a [`Graph`] tape and differentiated with [`Graph::backward`].
//!
//! The engine is deliberately small: only the operations those models need,
//! every one of them covered by finite-difference gradient checks.

pub mod graph;
pub mod sparse;
pub mod tensor;

pub use graph::{Graph, Var};
pub use sparse::SparseMatrix;
pub use tensor::Tensor;
