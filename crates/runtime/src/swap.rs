//! [`SwapCell`]: an atomically swappable `Arc<T>` — the std-only stand-in
//! for the `arc-swap` crate, built for zero-downtime artifact hot-swap in
//! the serving layer.
//!
//! ## Semantics
//!
//! A `SwapCell<T>` holds one published `Arc<T>`. [`SwapCell::load`] hands
//! any number of concurrent readers a clone of the current value without
//! ever blocking them: a load is two striped counter bumps, one atomic
//! pointer read and one reference-count increment — no mutex, no
//! allocation, no waiting on writers. [`SwapCell::swap`] publishes a new
//! value with a single atomic pointer flip (readers arriving after the
//! flip see the new value immediately), then waits out a *grace period*
//! before reclaiming its own reference to the old value, so a reader that
//! raced the flip has always secured its reference count first.
//!
//! ## Why the grace period is needed
//!
//! The textbook hazard: a reader loads the raw pointer, and before it can
//! increment the strong count the writer swaps and drops the last
//! reference — use-after-free. The classic solutions are hazard pointers
//! or epoch schemes; this cell uses the simplest sound one, striped
//! in-flight counters (RCU-style):
//!
//! * Readers bump a per-stripe `active` counter *before* reading the
//!   pointer and decrement it *after* securing their reference.
//! * The writer flips the pointer first, then waits until it has observed
//!   `active == 0` **once** per stripe.
//!
//! All operations are `SeqCst`, so they form one total order. If a reader
//! obtained the *old* pointer, its pointer read precedes the writer's
//! flip, hence its increment precedes the flip, hence the writer's later
//! `active == 0` observation proves that reader's decrement — and
//! therefore its reference-count increment — already happened. Readers
//! that arrive after the flip hold the *new* pointer, so the writer never
//! waits on them for safety; it only needs each stripe to be momentarily
//! empty. The reader critical section is a handful of instructions, so
//! the flip pause is micro- not milliseconds even under reader hammering
//! (threads are spread over [`STRIPES`] independent counters).
//!
//! Dropping the cell reclaims the final published value; `swap` returns
//! the previous `Arc` so callers can keep retired generations observable
//! (e.g. "draining" reporting) instead of dropping them blindly.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent reader counters. More stripes = less false
/// sharing between reader threads and faster grace periods; 32 covers the
/// thread counts this workspace runs (readers are assigned round-robin).
const STRIPES: usize = 32;

/// A cache-line-padded in-flight reader counter.
#[repr(align(64))]
struct Stripe {
    active: AtomicU64,
}

/// Round-robin stripe assignment: each thread picks a stripe once, on its
/// first `load`, so two hammering readers only share a counter when more
/// than [`STRIPES`] threads exist.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i) % STRIPES
}

/// An atomically swappable `Arc<T>`: wait-free reads, single-pointer-flip
/// writes with a bounded grace period. See the module docs for the
/// correctness argument.
pub struct SwapCell<T> {
    /// Raw pointer produced by `Arc::into_raw`; the cell owns exactly one
    /// strong reference to whatever this points at.
    ptr: AtomicPtr<T>,
    stripes: Box<[Stripe; STRIPES]>,
}

// The cell hands out `Arc<T>` clones across threads, so it needs exactly
// the bounds `Arc<T>: Send + Sync` needs.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell initially publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        let stripes: Vec<Stripe> = (0..STRIPES)
            .map(|_| Stripe {
                active: AtomicU64::new(0),
            })
            .collect();
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            stripes: stripes.try_into().map_err(|_| ()).expect("STRIPES items"),
        }
    }

    /// A clone of the currently published value. Never blocks: two counter
    /// bumps, a pointer read and a refcount increment. Loads on one thread
    /// observe publications in order (the pointer only moves forward).
    pub fn load(&self) -> Arc<T> {
        let stripe = &self.stripes[stripe_index()];
        stripe.active.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst);
        // Safety: `p` came from `Arc::into_raw` and the cell's strong
        // reference to it cannot be released before our decrement below is
        // observed by the writer's grace period (see module docs).
        let value = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        stripe.active.fetch_sub(1, Ordering::SeqCst);
        value
    }

    /// Publishes `new` (readers see it from this instant on) and returns
    /// the previously published value after the grace period — once `swap`
    /// returns, no reader can still be *acquiring* the old value, though
    /// readers may of course still hold clones of it.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let old = self
            .ptr
            .swap(Arc::into_raw(new) as *mut T, Ordering::SeqCst);
        self.wait_grace_period();
        // Safety: reclaims the strong reference the cell held on the old
        // value; the grace period proves no reader still holds the raw
        // pointer without having incremented the count.
        unsafe { Arc::from_raw(old) }
    }

    /// Waits until every stripe has been observed momentarily empty. The
    /// reader critical section is a few instructions, so this resolves in
    /// nanoseconds; the escalating backoff only matters if a reader thread
    /// is preempted mid-acquire.
    fn wait_grace_period(&self) {
        for stripe in self.stripes.iter() {
            let mut spins = 0u32;
            while stripe.active.load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else if spins < 1024 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(10));
                }
            }
        }
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers can exist; just reclaim the
        // cell's strong reference.
        let p = *self.ptr.get_mut();
        unsafe { drop(Arc::from_raw(p)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SwapCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_published_value() {
        let cell = SwapCell::new(Arc::new(41u32));
        assert_eq!(*cell.load(), 41);
        let old = cell.swap(Arc::new(42));
        assert_eq!(*old, 41);
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn swap_returns_previous_values_in_order() {
        let cell = SwapCell::new(Arc::new(0usize));
        for i in 1..=10 {
            let old = cell.swap(Arc::new(i));
            assert_eq!(*old, i - 1);
        }
    }

    #[test]
    fn retired_value_drops_once_readers_release() {
        struct Tracked(Arc<AtomicU64>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let cell = SwapCell::new(Arc::new(Tracked(Arc::clone(&drops))));
        let held = cell.load();
        let old = cell.swap(Arc::new(Tracked(Arc::clone(&drops))));
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(old);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "reader still holds it");
        drop(held);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_load_swap_smoke() {
        let cell = Arc::new(SwapCell::new(Arc::new(0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..20_000 {
                        let v = *cell.load();
                        assert!(v >= last, "loads went backwards: {v} after {last}");
                        last = v;
                    }
                });
            }
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                for i in 1..=1_000u64 {
                    cell.swap(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.load(), 1_000);
    }
}
