//! # openea-runtime
//!
//! The std-only substrate beneath every other crate of the workspace. The
//! repository's design contract is "every substrate implemented here"; this
//! crate is where that bottoms out, replacing what used to be crates.io
//! dependencies with four small, fully deterministic subsystems:
//!
//! - [`rng`] — a seedable pseudo-random generator (SplitMix64 seeding into
//!   xoshiro256**) behind `rand`-style traits: [`rng::Rng`],
//!   [`rng::SeedableRng`], [`rng::SliceRandom`] and the distribution types
//!   [`rng::WeightedIndex`] / [`rng::Normal`]. Streams are stable across
//!   platforms and releases: the same seed always yields the same values.
//! - [`pool`] — a scoped thread pool with atomic work-stealing chunk
//!   dispatch for data-parallel loops over disjoint output slices. Results
//!   are bit-identical for every thread count because workers only race for
//!   *which* chunk to compute, never for what to write into it.
//! - [`json`] — a minimal JSON encoder/decoder for the benchmark result
//!   artifacts, format-compatible with the pretty printer that produced the
//!   checked-in `results/*.json` files.
//! - [`testkit`] — a property-testing harness with shrinking generators and
//!   a wall-clock micro-bench timer, replacing `proptest` and `criterion`.
//! - [`timer`] — a monotonic microsecond clock and a fixed-footprint
//!   power-of-two latency histogram for the serving layer's percentile
//!   telemetry.
//! - [`swap`] — [`swap::SwapCell`], an atomically swappable `Arc<T>`
//!   (wait-free reads, pointer-flip publication with an RCU-style grace
//!   period) — the std-only `arc-swap` replacement behind zero-downtime
//!   snapshot hot-swap in the serving layer.
//! - [`os`] — the one sanctioned raw-OS-call site: a safe, level-triggered
//!   epoll [`os::Poller`] plus a self-pipe [`os::Waker`], the readiness
//!   primitive under the event-driven serving core (Linux only).
//!
//! ```
//! use openea_runtime::rng::{Rng, SeedableRng, SmallRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
//! ```

pub mod json;
pub mod os;
pub mod pool;
pub mod rng;
pub mod swap;
pub mod testkit;
pub mod timer;
