//! A wall-clock micro-benchmark timer — the in-tree `criterion`
//! replacement for `[[bench]]` targets built with `harness = false`.
//!
//! Each benchmark is a closure timed over several samples of auto-sized
//! iteration batches (batch size is calibrated so one sample takes a few
//! milliseconds). Reported statistics are the median, minimum and maximum
//! per-iteration time across samples; the median is robust to scheduler
//! noise, the spread shows it.
//!
//! ```no_run
//! use openea_runtime::testkit::bench::Harness;
//!
//! let mut h = Harness::from_args();
//! h.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! h.finish();
//! ```
//!
//! `cargo bench -- <filter>` runs only benchmarks whose name contains
//! `<filter>`; flags criterion used to receive (`--bench`) are ignored.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Samples per benchmark.
const SAMPLES: usize = 10;

/// Collects and prints benchmark results; construct via
/// [`Harness::from_args`].
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Reads the benchmark name filter from the command line, skipping the
    /// harness flags cargo passes through.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter, ran: 0 }
    }

    /// Runs one benchmark unless filtered out. The closure's return value
    /// is passed through [`black_box`] so the computation cannot be
    /// optimized away.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Calibrate: grow the batch until one batch costs ~the sample
        // target (or a single iteration already exceeds it).
        let mut batch = 1u64;
        let batch = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= SAMPLE_TARGET || batch >= 1 << 24 {
                break batch;
            }
            // Aim directly at the target from the measured rate.
            let scale = (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            batch = (batch.saturating_mul(scale as u64)).clamp(batch + 1, 1 << 24);
        };

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "bench {name:40} {:>12}/iter  (min {:>12}, max {:>12}, {batch} iters/sample)",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max),
        );
    }

    /// Prints the summary footer.
    pub fn finish(self) {
        println!("bench: {} benchmark(s) run", self.ran);
    }
}

/// Formats a duration in seconds with an adaptive unit.
fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// An identity function the optimizer must assume reads and writes its
/// argument — keeps benchmarked computations alive without hardware
/// fences.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn harness_runs_and_counts() {
        let mut h = Harness {
            filter: Some("match".into()),
            ran: 0,
        };
        let mut hits = 0;
        h.bench("matching_name", || hits += 1);
        h.bench("other", || panic!("filtered out"));
        assert_eq!(h.ran, 1);
        assert!(hits > 0);
    }
}
