//! Property-based testing with shrinking, plus a micro-bench timer.
//!
//! The in-tree replacement for `proptest` + `criterion`. A property is an
//! ordinary `#[test]` written through the [`props!`] macro: each parameter
//! names a [`Gen`] (value generator), the harness runs the body over many
//! generated inputs, and on failure it *shrinks* — greedily walking toward
//! the smallest input that still fails before reporting it.
//!
//! ```
//! use openea_runtime::testkit::prelude::*;
//!
//! props! {
//!     #![cases = 64]
//!     // in a test module this would also carry #[test]
//!     fn reverse_is_involutive(v in vec_of(0u32..100, 0..20)) {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         prop_assert_eq!(v, w);
//!     }
//! }
//! reverse_is_involutive();
//! ```
//!
//! Runs are deterministic: the case seeds derive from a fixed base (or
//! `OPENEA_PROP_SEED` to reproduce a specific failure; the failure message
//! prints the seed that found it).

pub mod bench;
pub mod faults;
pub mod replay;

use crate::rng::{Rng, SeedableRng, SmallRng};

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub enum PropFail {
    /// An assertion failed; carries the rendered message.
    Fail(String),
    /// `prop_assume!` rejected the input; the case is discarded, not failed.
    Reject,
}

/// What property bodies return (via the `prop_assert*` macros).
pub type PropResult = Result<(), PropFail>;

/// A generator of test values with shrinking.
///
/// `shrink` proposes a few *strictly simpler* variants of a failing value
/// (closer to the range origin, shorter, fewer elements). The harness
/// re-runs the property on them and descends greedily; generators must make
/// progress (candidates converge toward a fixed point) but need not be
/// exhaustive.
pub trait Gen {
    type Value: Clone + std::fmt::Debug;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_gen_int_range {
    ($($t:ty),*) => {$(
        impl Gen for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start, *value)
            }
        }

        impl Gen for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start(), *value)
            }
        }
    )*};
}

fn shrink_int<T>(origin: T, value: T) -> Vec<T>
where
    T: Copy
        + PartialEq
        + PartialOrd
        + std::ops::Add<Output = T>
        + std::ops::Sub<Output = T>
        + HalfStep,
{
    if value == origin {
        return Vec::new();
    }
    let mid = origin + (value - origin).half();
    let step = value.pred();
    let mut out = vec![origin];
    if mid != origin && mid != value {
        out.push(mid);
    }
    if step != value && step >= origin && step != mid {
        out.push(step);
    }
    out
}

/// Tiny numeric helper so `shrink_int` can halve distances and step toward
/// the origin for every primitive under a single implementation.
pub trait HalfStep {
    fn half(self) -> Self;
    /// `self - 1` (callers guarantee the value is above the range origin,
    /// which for unsigned types means it is nonzero).
    fn pred(self) -> Self;
}

macro_rules! impl_halfstep {
    ($($t:ty),*) => {$(
        impl HalfStep for $t {
            fn half(self) -> Self { self / 2 }
            fn pred(self) -> Self { self - 1 }
        }
    )*};
}

impl_halfstep!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_gen_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_gen_float_range {
    ($($t:ty),*) => {$(
        impl Gen for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(self.start, *value)
            }
        }

        impl Gen for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*self.start(), *value)
            }
        }
    )*};
}

macro_rules! impl_shrink_float {
    ($name:ident, $t:ty) => {
        fn $name(origin: $t, value: $t) -> Vec<$t> {
            if value == origin || !value.is_finite() {
                return Vec::new();
            }
            let mid = origin + (value - origin) / 2.0;
            let mut out = vec![origin];
            if mid != origin && mid != value {
                out.push(mid);
            }
            out
        }
    };
}

impl_shrink_float!(shrink_float_f32, f32);
impl_shrink_float!(shrink_float_f64, f64);

fn shrink_float<T: ShrinkFloat>(origin: T, value: T) -> Vec<T> {
    T::shrink_float(origin, value)
}

pub trait ShrinkFloat: Sized {
    fn shrink_float(origin: Self, value: Self) -> Vec<Self>;
}

impl ShrinkFloat for f32 {
    fn shrink_float(origin: Self, value: Self) -> Vec<Self> {
        shrink_float_f32(origin, value)
    }
}

impl ShrinkFloat for f64 {
    fn shrink_float(origin: Self, value: Self) -> Vec<Self> {
        shrink_float_f64(origin, value)
    }
}

impl_gen_float_range!(f32, f64);

// ------------------------------------------------------------------ bool

/// Either boolean, shrinking `true → false`.
#[derive(Clone, Copy, Debug)]
pub struct BoolGen;

/// Generator for an arbitrary `bool`.
pub fn any_bool() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

// ----------------------------------------------------------- collections

/// Length specifications accepted by [`vec_of`] and [`string_of`]: a fixed
/// `usize`, `lo..hi`, or `lo..=hi`.
pub trait LenRange {
    /// Inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl LenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl LenRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty length range");
        (self.start, self.end - 1)
    }
}

impl LenRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty length range");
        (*self.start(), *self.end())
    }
}

/// `Vec<T>` generator; see [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// A vector whose length is drawn from `len` and whose elements come from
/// `elem`. Shrinks by dropping elements (toward `min` length), then by
/// shrinking individual elements.
pub fn vec_of<G: Gen>(elem: G, len: impl LenRange) -> VecGen<G> {
    let (min, max) = len.bounds();
    VecGen { elem, min, max }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<G::Value> {
        let n = rng.gen_range(self.min..=self.max);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // Structural shrinks first: halve toward the minimum length, then
        // drop single elements.
        if n > self.min {
            let half = (n / 2).max(self.min);
            if half < n {
                out.push(value[..half].to_vec());
            }
            for i in (0..n).take(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element shrinks: first few positions only, to bound the fanout.
        for i in (0..n).take(8) {
            for cand in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// `String` generator; see [`string_of`].
#[derive(Clone, Debug)]
pub struct StringGen {
    charset: Vec<char>,
    min: usize,
    max: usize,
}

/// A string of characters drawn uniformly from `charset`, with length in
/// `len` — the port target for `proptest` regex strategies like
/// `"[a-z]{1,8}"` (→ `string_of("abcdefghijklmnopqrstuvwxyz", 1..=8)`).
pub fn string_of(charset: &str, len: impl LenRange) -> StringGen {
    let (min, max) = len.bounds();
    let charset: Vec<char> = charset.chars().collect();
    assert!(!charset.is_empty(), "empty charset");
    StringGen { charset, min, max }
}

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let n = rng.gen_range(self.min..=self.max);
        (0..n)
            .map(|_| self.charset[rng.gen_range(0..self.charset.len())])
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n > self.min {
            let half = (n / 2).max(self.min);
            out.push(chars[..half].iter().collect());
            let mut v = chars.clone();
            v.pop();
            out.push(v.iter().collect());
        }
        // Step characters toward the first charset element.
        if let Some(&first) = self.charset.first() {
            for i in 0..n.min(4) {
                if chars[i] != first {
                    let mut v = chars.clone();
                    v[i] = first;
                    out.push(v.iter().collect());
                }
            }
        }
        out
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_gen_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Gen),+> Gen for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx).into_iter().take(4) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_tuple!(A: 0);
impl_gen_tuple!(A: 0, B: 1);
impl_gen_tuple!(A: 0, B: 1, C: 2);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_gen_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ----------------------------------------------------------------- runner

/// Default number of cases when `props!` has no `#![cases = N]` header.
pub const DEFAULT_CASES: u32 = 256;

fn base_seed() -> u64 {
    match std::env::var("OPENEA_PROP_SEED") {
        Ok(s) => s.parse().unwrap_or(0xEA_5EED),
        Err(_) => 0xEA_5EED,
    }
}

/// Drives one property: generates `cases` inputs, runs `prop` on each, and
/// on failure shrinks greedily before panicking with the minimal
/// counterexample and the seed that reproduces it.
///
/// `prop_assume!` rejections are discarded (with an overall cap so a
/// property that rejects everything still terminates).
pub fn run_property<G: Gen>(
    name: &str,
    cases: u32,
    gen: &G,
    prop: impl Fn(&G::Value) -> PropResult,
) {
    let seed = base_seed();
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(10).max(100);
    while accepted < cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!("property {name}: too many prop_assume! rejections ({attempts} attempts)");
        }
        let case_seed = seed ^ (attempts as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        match prop(&value) {
            Ok(()) => accepted += 1,
            Err(PropFail::Reject) => {}
            Err(PropFail::Fail(msg)) => {
                let (min_value, min_msg, steps) = shrink_failure(gen, value, msg, &prop);
                panic!(
                    "property {name} failed after {accepted} passing case(s)\n\
                     minimal input (after {steps} shrink step(s)): {min_value:?}\n\
                     assertion: {min_msg}\n\
                     reproduce with OPENEA_PROP_SEED={seed}"
                );
            }
        }
    }
}

fn shrink_failure<G: Gen>(
    gen: &G,
    mut value: G::Value,
    mut msg: String,
    prop: &impl Fn(&G::Value) -> PropResult,
) -> (G::Value, String, usize) {
    let mut steps = 0usize;
    'outer: while steps < 200 {
        for cand in gen.shrink(&value) {
            if let Err(PropFail::Fail(m)) = prop(&cand) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Everything a property-test module needs: the [`props!`] /
/// `prop_assert*` macros, the generator constructors and the [`Gen`] trait.
pub mod prelude {
    pub use super::{any_bool, string_of, vec_of, Gen, PropFail, PropResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, props};
}

/// Declares property tests. Each `fn` becomes a `#[test]`; parameters are
/// `name in generator` pairs. An optional `#![cases = N]` header sets the
/// case count for every property in the block (default
/// [`DEFAULT_CASES`]).
#[macro_export]
macro_rules! props {
    (
        @cases ($cases:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $gen:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = $cases;
                let __gen = ($($gen,)+);
                $crate::testkit::run_property(
                    stringify!($name),
                    __cases,
                    &__gen,
                    |__value| -> $crate::testkit::PropResult {
                        let ($($arg,)+) = ::core::clone::Clone::clone(__value);
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
    // A failed `@cases` match must not fall through to the catch-all entry
    // rule below (it would re-wrap and recurse forever).
    ( @cases $($rest:tt)* ) => {
        compile_error!(
            "props!: expected `fn name(arg in gen, ...) { ... }` items (each arg is a pattern bound from a Gen expression)"
        );
    };
    ( #![cases = $cases:expr] $($rest:tt)+ ) => {
        $crate::props!(@cases ($cases) $($rest)+);
    };
    ( $($rest:tt)+ ) => {
        $crate::props!(@cases ($crate::testkit::DEFAULT_CASES) $($rest)+);
    };
}

/// Asserts inside a property body; on failure the case shrinks instead of
/// aborting the whole test run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::testkit::PropFail::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::testkit::PropFail::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn generators_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let v = vec_of(0u8..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 5));
            let s = string_of("ab", 1..=3).generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let (a, b) = (0u32..4, -1.0f32..1.0).generate(&mut rng);
            assert!(a < 4 && (-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // Force a failure and check the shrinker lands at (or next to) the
        // boundary: the property "x < 50" has minimal counterexample 50.
        let gen = 0u32..1000;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut value = gen.generate(&mut rng);
        while value < 50 {
            value = gen.generate(&mut rng);
        }
        let prop = |v: &u32| -> PropResult {
            prop_assert!(*v < 50);
            Ok(())
        };
        let (min, _, _) = shrink_failure(&gen, value, "seed failure".into(), &prop);
        assert_eq!(min, 50);
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        let gen = vec_of(0u32..100, 0..50);
        let value: Vec<u32> = (0..40).collect();
        // Fails whenever the vec has ≥ 3 elements.
        let prop = |v: &Vec<u32>| -> PropResult {
            prop_assert!(v.len() < 3);
            Ok(())
        };
        let (min, _, _) = shrink_failure(&gen, value, "seed".into(), &prop);
        assert_eq!(min.len(), 3);
    }

    props! {
        #![cases = 64]

        #[test]
        fn harness_runs_green_properties(
            v in vec_of(0u32..1000, 0..30),
            flag in any_bool(),
        ) {
            let doubled: Vec<u64> = v.iter().map(|&x| x as u64 * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            for (&d, &x) in doubled.iter().zip(&v) {
                prop_assert_eq!(d, x as u64 * 2);
            }
            if flag {
                prop_assert!(true);
            }
        }

        #[test]
        fn assume_discards_but_terminates(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failing_property failed")]
    fn failing_property_panics_with_shrunk_input() {
        run_property("failing_property", 64, &(0u32..1000), |&v| {
            prop_assert!(v < 10, "v too big: {v}");
            Ok(())
        });
    }

    #[test]
    fn runs_are_deterministic() {
        // Same harness, same seed: record the generated values twice.
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            run_property("det", 16, &(0u32..1_000_000), |&v| {
                out.borrow_mut().push(v);
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
