//! Fault injection for on-disk artifacts: the reusable half of the
//! snapshot hot-swap torture suite.
//!
//! A durable artifact (snapshot, manifest, shard) is a checksummed byte
//! file; every realistic way such a file goes bad reduces to a small set
//! of byte-level faults this module can synthesize from a pristine copy:
//!
//! * **Truncation** — a torn write or partial copy cut the file short.
//! * **Bit flips** — silent media corruption anywhere in the framing or
//!   payload.
//! * **Removal** — a shard or artifact file is simply gone.
//! * **Slow non-atomic writes** — a producer that ignores the
//!   tmp-then-rename protocol and dribbles bytes straight into the final
//!   path, exposing readers to every prefix of the file.
//!
//! Loaders under test must turn *every* injected fault into a typed error
//! (never a panic, never a silently wrong artifact), and a serving layer
//! must keep answering from its current generation when a reload hits one.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One byte-level corruption of an artifact file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Keep only the first `len` bytes.
    Truncate(usize),
    /// XOR one bit: `offset` indexes the byte, `bit` (0..8) the bit.
    FlipBit { offset: usize, bit: u8 },
    /// Delete the file entirely.
    Remove,
}

impl Fault {
    /// Applies the fault to a pristine byte image. `None` means the file
    /// does not exist afterwards ([`Fault::Remove`]).
    pub fn apply(&self, pristine: &[u8]) -> Option<Vec<u8>> {
        match *self {
            Fault::Truncate(len) => Some(pristine[..len.min(pristine.len())].to_vec()),
            Fault::FlipBit { offset, bit } => {
                let mut bytes = pristine.to_vec();
                if let Some(b) = bytes.get_mut(offset) {
                    *b ^= 1 << (bit % 8);
                }
                Some(bytes)
            }
            Fault::Remove => None,
        }
    }

    /// Materializes the faulted image at `path` (writing the corrupted
    /// bytes, or removing the file for [`Fault::Remove`]).
    pub fn inject(&self, path: &Path, pristine: &[u8]) -> std::io::Result<()> {
        match self.apply(pristine) {
            Some(bytes) => std::fs::write(path, bytes),
            None => match std::fs::remove_file(path) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }
}

/// Every truncation length in `0..len`, stepping by `stride` (the final
/// almost-complete cut `len - 1` is always included so the checksum
/// trailer itself gets truncated). `stride` 1 enumerates every offset.
pub fn truncations(len: usize, stride: usize) -> Vec<Fault> {
    let stride = stride.max(1);
    let mut out: Vec<Fault> = (0..len).step_by(stride).map(Fault::Truncate).collect();
    if len > 0 && out.last() != Some(&Fault::Truncate(len - 1)) {
        out.push(Fault::Truncate(len - 1));
    }
    out
}

/// One single-bit flip per sampled byte offset (stepping by `stride`),
/// rotating through the eight bit positions so corruption is not biased
/// toward one bit lane.
pub fn bit_flips(len: usize, stride: usize) -> Vec<Fault> {
    let stride = stride.max(1);
    (0..len)
        .step_by(stride)
        .map(|offset| Fault::FlipBit {
            offset,
            bit: (offset % 8) as u8,
        })
        .collect()
}

/// A background writer that violates the atomic tmp-then-rename protocol
/// on purpose: it dribbles `bytes` into `path` in `chunk`-byte pieces,
/// flushing and sleeping `delay` between pieces, so concurrent readers
/// observe every prefix of the file. Join it (or drop the handle) to wait
/// for the final, complete image.
pub struct SlowWriter {
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl SlowWriter {
    /// Starts writing `bytes` to `path` slowly and non-atomically.
    pub fn start(path: &Path, bytes: Vec<u8>, chunk: usize, delay: std::time::Duration) -> Self {
        let path: PathBuf = path.to_path_buf();
        let chunk = chunk.max(1);
        let handle = std::thread::Builder::new()
            .name("testkit-slow-writer".into())
            .spawn(move || {
                let mut f = std::fs::File::create(&path)?;
                for piece in bytes.chunks(chunk) {
                    f.write_all(piece)?;
                    f.flush()?;
                    f.sync_data()?;
                    std::thread::sleep(delay);
                }
                Ok(())
            })
            .expect("spawn slow writer");
        Self {
            handle: Some(handle),
        }
    }

    /// Waits for the write to finish and returns its I/O result.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.handle
            .take()
            .expect("finish called once")
            .join()
            .expect("slow writer must not panic")
    }
}

impl Drop for SlowWriter {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_keeps_prefix() {
        let bytes = [1u8, 2, 3, 4, 5];
        assert_eq!(Fault::Truncate(2).apply(&bytes).unwrap(), vec![1, 2]);
        assert_eq!(Fault::Truncate(0).apply(&bytes).unwrap(), Vec::<u8>::new());
        assert_eq!(Fault::Truncate(99).apply(&bytes).unwrap(), bytes.to_vec());
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let bytes = [0u8; 4];
        let out = Fault::FlipBit { offset: 2, bit: 3 }.apply(&bytes).unwrap();
        assert_eq!(out, vec![0, 0, 8, 0]);
        // Out-of-range offset leaves the image untouched (still a valid
        // fault to enumerate; injecting it is a no-op corruption).
        let same = Fault::FlipBit { offset: 9, bit: 0 }.apply(&bytes).unwrap();
        assert_eq!(same, bytes.to_vec());
    }

    #[test]
    fn remove_yields_none_and_tolerates_missing_file() {
        assert_eq!(Fault::Remove.apply(&[1, 2, 3]), None);
        let dir = std::env::temp_dir().join(format!("openea-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("never-created");
        Fault::Remove.inject(&path, &[1, 2, 3]).unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn enumerators_cover_the_edges() {
        let t = truncations(10, 3);
        assert!(t.contains(&Fault::Truncate(0)));
        assert!(t.contains(&Fault::Truncate(9)), "almost-complete cut");
        let f = bit_flips(16, 5);
        assert_eq!(
            f,
            vec![
                Fault::FlipBit { offset: 0, bit: 0 },
                Fault::FlipBit { offset: 5, bit: 5 },
                Fault::FlipBit { offset: 10, bit: 2 },
                Fault::FlipBit { offset: 15, bit: 7 },
            ]
        );
    }

    #[test]
    fn slow_writer_lands_the_full_image() {
        let dir = std::env::temp_dir().join(format!("openea-slow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.bin");
        let bytes: Vec<u8> = (0..=255).collect();
        let w = SlowWriter::start(
            &path,
            bytes.clone(),
            64,
            std::time::Duration::from_millis(1),
        );
        w.finish().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
    }
}
