//! Zipf-replay concurrency driver: the load half of the hot-swap torture
//! suite, reusable by tier-1 tests and `openea-bench`.
//!
//! The driver spawns `clients` threads, each sampling query entities from
//! a [`Zipf`] distribution (web-like popularity skew) on its own seeded
//! RNG stream, and hands every query to a caller-supplied closure that
//! actually issues it (directly against an index, or over HTTP — the
//! driver does not care). The closure classifies each answer as one of
//! the [`ReplayOutcome`]s the hot-swap contract names:
//!
//! * **dropped** — the query got no well-formed answer (connection error,
//!   non-200 status, unparseable body);
//! * **stale** — the answer carried a generation that is unknown or moved
//!   *backwards* on that client's connection (generations must be
//!   monotone per client: once a flip is observed, the old artifact may
//!   never answer again);
//! * **incorrect** — the answer's bits diverge from the dense reference
//!   for the generation it claims.
//!
//! The [`ReplayReport`] aggregates counts, client-observed latency and
//! the first few failure messages; a torture test asserts the three
//! counters are all zero across every flip.

use crate::rng::{Rng, SeedableRng, SmallRng};
use crate::timer::{MicrosHistogram, Monotonic};

/// Inverse-CDF Zipf sampler over `n` ranks: rank `r` gets weight
/// `1/(r+1)^s`. Deterministic given the caller's RNG.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u = rng.gen_range(0.0f64..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// How one replayed query went. `Ok` carries nothing; the three failure
/// kinds carry a diagnostic message (only the first few are retained).
#[derive(Clone, Debug)]
pub enum ReplayOutcome {
    Ok,
    Dropped(String),
    Stale(String),
    Incorrect(String),
}

/// Replay shape: client count, per-client query count, skew and seed.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    pub clients: usize,
    pub queries_per_client: usize,
    /// Zipf exponent; 0.0 degenerates toward uniform.
    pub zipf_s: f64,
    pub seed: u64,
}

/// Aggregated result of one replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    pub total: usize,
    pub ok: usize,
    pub dropped: usize,
    pub stale: usize,
    pub incorrect: usize,
    /// Client-observed per-query latency.
    pub latency: MicrosHistogram,
    /// First few failure diagnostics, prefixed by their kind.
    pub failures: Vec<String>,
}

impl ReplayReport {
    /// True iff every query came back on time, fresh and bit-correct.
    pub fn clean(&self) -> bool {
        self.dropped == 0 && self.stale == 0 && self.incorrect == 0
    }

    fn absorb(&mut self, outcome: ReplayOutcome, us: u64) {
        self.total += 1;
        self.latency.record(us);
        let (slot, msg) = match outcome {
            ReplayOutcome::Ok => {
                self.ok += 1;
                return;
            }
            ReplayOutcome::Dropped(m) => (&mut self.dropped, format!("dropped: {m}")),
            ReplayOutcome::Stale(m) => (&mut self.stale, format!("stale: {m}")),
            ReplayOutcome::Incorrect(m) => (&mut self.incorrect, format!("incorrect: {m}")),
        };
        *slot += 1;
        if self.failures.len() < 8 {
            self.failures.push(msg);
        }
    }

    fn merge(&mut self, other: ReplayReport) {
        self.total += other.total;
        self.ok += other.ok;
        self.dropped += other.dropped;
        self.stale += other.stale;
        self.incorrect += other.incorrect;
        self.latency.merge(&other.latency);
        for f in other.failures {
            if self.failures.len() < 8 {
                self.failures.push(f);
            }
        }
    }
}

/// Runs the replay: `clients` threads each issue `queries_per_client`
/// Zipf-sampled queries over `n_entities`. `client_factory(c)` builds the
/// per-client issuer (own its connection state there); the issuer maps an
/// entity id to a [`ReplayOutcome`]. Latency is measured around each
/// issuer call and merged across clients.
pub fn replay<C, F>(n_entities: usize, opts: &ReplayOptions, client_factory: C) -> ReplayReport
where
    C: Fn(usize) -> F + Sync,
    F: FnMut(usize) -> ReplayOutcome,
{
    assert!(n_entities > 0, "replay needs at least one entity");
    let zipf = Zipf::new(n_entities, opts.zipf_s);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let zipf = &zipf;
                let factory = &client_factory;
                s.spawn(move || {
                    let mut issue = factory(c);
                    let mut rng = SmallRng::seed_from_u64(opts.seed ^ ((c as u64) << 32));
                    let mut report = ReplayReport::default();
                    let clock = Monotonic::start();
                    for _ in 0..opts.queries_per_client {
                        let entity = zipf.sample(&mut rng);
                        let t0 = clock.micros();
                        let outcome = issue(entity);
                        report.absorb(outcome, clock.micros().saturating_sub(t0));
                    }
                    report
                })
            })
            .collect();
        let mut merged = ReplayReport::default();
        for h in handles {
            merged.merge(h.join().expect("replay client must not panic"));
        }
        merged
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 100];
        for _ in 0..5_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates any deep rank under a power law.
        assert!(
            counts[0] > counts[50] * 5,
            "head {} tail {}",
            counts[0],
            counts[50]
        );
        assert_eq!(counts.iter().sum::<usize>(), 5_000);
    }

    #[test]
    fn replay_aggregates_outcomes_across_clients() {
        let issued = AtomicUsize::new(0);
        let opts = ReplayOptions {
            clients: 3,
            queries_per_client: 40,
            zipf_s: 1.1,
            seed: 7,
        };
        let report = replay(25, &opts, |client| {
            let issued = &issued;
            let mut i = 0usize;
            move |entity| {
                assert!(entity < 25);
                issued.fetch_add(1, Ordering::Relaxed);
                i += 1;
                match (client, i) {
                    (1, 5) => ReplayOutcome::Dropped("boom".into()),
                    (2, 9) => ReplayOutcome::Stale("old gen".into()),
                    (2, 10) => ReplayOutcome::Incorrect("bits".into()),
                    _ => ReplayOutcome::Ok,
                }
            }
        });
        assert_eq!(report.total, 120);
        assert_eq!(issued.load(Ordering::Relaxed), 120);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.stale, 1);
        assert_eq!(report.incorrect, 1);
        assert_eq!(report.ok, 117);
        assert!(!report.clean());
        assert_eq!(report.latency.count(), 120);
        assert_eq!(report.failures.len(), 3);
    }

    #[test]
    fn clean_replay_reports_clean() {
        let opts = ReplayOptions {
            clients: 2,
            queries_per_client: 10,
            zipf_s: 1.0,
            seed: 1,
        };
        let report = replay(5, &opts, |_| |_| ReplayOutcome::Ok);
        assert!(report.clean());
        assert_eq!(report.ok, 20);
    }

    #[test]
    fn replay_is_deterministic_in_its_sampled_entities() {
        let opts = ReplayOptions {
            clients: 2,
            queries_per_client: 30,
            zipf_s: 1.1,
            seed: 42,
        };
        let collect = || {
            let seen = std::sync::Mutex::new(vec![Vec::new(), Vec::new()]);
            replay(50, &opts, |c| {
                let seen = &seen;
                move |entity| {
                    seen.lock().unwrap()[c].push(entity);
                    ReplayOutcome::Ok
                }
            });
            seen.into_inner().unwrap()
        };
        assert_eq!(collect(), collect());
    }
}
