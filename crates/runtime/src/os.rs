//! The one sanctioned raw-OS-call site: a thin, safe epoll shim.
//!
//! Everything else in the workspace reaches the operating system through
//! `std`. The event-driven serving core needs one primitive `std` does not
//! expose — readiness multiplexing over thousands of sockets — so this
//! module wraps the three epoll syscalls (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`) behind the safe [`Poller`] type and nothing more. The
//! symbols are resolved from the C library `std` already links on Linux;
//! no crate dependency is added and no other raw call exists in the tree.
//!
//! ## Safety argument
//!
//! The `unsafe` surface is three FFI calls, each with fully owned inputs:
//!
//! * `epoll_create1` takes a flag constant and returns a fresh descriptor,
//!   which is immediately wrapped in an [`OwnedFd`] so it cannot leak and
//!   is closed exactly once (by drop).
//! * `epoll_ctl` passes a pointer to a stack-allocated, `#[repr(C)]`
//!   (packed on x86-64, matching the kernel ABI) event record that the
//!   kernel reads before the call returns — no retained aliasing.
//! * `epoll_wait` writes into a caller-owned buffer whose length is passed
//!   alongside it; the kernel writes at most that many records, and only
//!   the records the return value vouches for are read back.
//!
//! Registering a file descriptor does **not** transfer ownership: the
//! caller keeps its socket alive for as long as it stays registered (the
//! [`Poller`] API takes `&impl AsRawFd`, so a registered-then-dropped
//! socket is a caller bug that surfaces as a harmless `ENOENT` on
//! deregister, never as memory unsafety — the kernel holds its own
//! reference to the underlying file for the epoll interest list).
//!
//! Readiness is **level-triggered**: a call to [`Poller::wait`] reports a
//! descriptor as long as it *remains* ready, so a consumer that does not
//! fully drain a socket is re-notified instead of deadlocking — the
//! forgiving default for a reactor that batches work.
//!
//! [`Waker`] is the self-pipe trick built entirely on `std`: a nonblocking
//! `UnixStream` pair whose read end is registered with the poller; any
//! thread can make `wait` return by writing one byte.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// Kernel ABI constants (include/uapi/linux/eventpoll.h). EPOLL_CLOEXEC
// equals O_CLOEXEC (0o2000000 on every Linux arch this workspace targets).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (4-byte aligned u64 payload); other architectures use natural
/// alignment. Getting this wrong corrupts the token, not memory — but we
/// match the ABI exactly.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    // Resolved from the C library std already links; these set errno on
    // failure, which `io::Error::last_os_error()` reads back.
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEvent, maxevents: i32, timeout_ms: i32) -> i32;
}

/// Which readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        // RDHUP rides along on reads so a peer's half-close surfaces as an
        // event even when no payload bytes are pending.
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the descriptor was registered under.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up (full or write-half close).
    pub hangup: bool,
    /// Error condition on the descriptor (always also treated as readable
    /// by consumers so the error is observed by the next I/O call).
    pub error: bool,
}

/// A safe, level-triggered epoll instance.
pub struct Poller {
    epfd: OwnedFd,
    /// Reused kernel-facing event buffer for [`Poller::wait`].
    buf: Vec<RawEvent>,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; a failed call returns -1 with
        // errno set and we surface it without touching the fd.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, owned descriptor that nothing
        // else closes; OwnedFd now closes it exactly once.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Self {
            epfd,
            buf: vec![RawEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, mut ev: RawEvent) -> io::Result<()> {
        // SAFETY: `ev` lives on this stack frame for the whole call; the
        // kernel copies it before returning and keeps no pointer to it.
        // For EPOLL_CTL_DEL the kernel ignores the event argument.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token`. The caller keeps ownership of the
    /// descriptor and must deregister (or close) it before reusing the
    /// token.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            RawEvent {
                events: interest.mask(),
                data: token,
            },
        )
    }

    /// Changes the interest set (and token) of an already-registered fd.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            RawEvent {
                events: interest.mask(),
                data: token,
            },
        )
    }

    /// Removes `fd` from the interest list. Closing a descriptor also
    /// removes it, so this failing with `ENOENT` is benign.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_DEL,
            fd.as_raw_fd(),
            RawEvent { events: 0, data: 0 },
        )
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses (`None` = wait forever), or a signal interrupts the
    /// wait (reported as zero events, like a timeout). Ready descriptors
    /// are appended to `out`, which is cleared first. Returns the number
    /// of events delivered.
    pub fn wait(
        &mut self,
        out: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a sub-millisecond timeout still sleeps instead
            // of spinning; saturate far-future deadlines.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        // SAFETY: `buf` is a live, uniquely borrowed allocation of
        // `buf.len()` records; the kernel writes at most `maxevents` of
        // them and we read back only the `n` it reports.
        let n = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) record before field reads.
            let (events, data) = (raw.events, raw.data);
            out.push(PollEvent {
                token: data,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLHUP | EPOLLRDHUP) != 0,
                error: events & EPOLLERR != 0,
            });
        }
        Ok(n as usize)
    }
}

/// Cross-thread wakeup for a [`Poller`]: the self-pipe trick on a
/// nonblocking `UnixStream` pair. Register [`Waker::reader`] with the
/// poller; any thread holding the `Waker` can then force `wait` to return.
pub struct Waker {
    reader: UnixStream,
    writer: UnixStream,
}

impl Waker {
    pub fn new() -> io::Result<Self> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(Self { reader, writer })
    }

    /// The end to register with the poller (read interest).
    pub fn reader(&self) -> &UnixStream {
        &self.reader
    }

    /// Makes the poller's next (or current) `wait` return. Idempotent
    /// while unconsumed: once the pipe holds a byte, further wakes are
    /// no-ops (`WouldBlock` when the buffer is full is success — the
    /// reader is already guaranteed to wake).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.writer).write(&[1u8]);
    }

    /// Consumes all pending wakeups; call after `wait` reports the reader
    /// ready, before re-entering `wait`.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.reader).read(&mut buf) {
            if n == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_and_drains() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.reader(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Nothing pending: a short wait times out with zero events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);

        waker.wake();
        waker.wake(); // coalesces
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();

        // Drained: back to timing out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, 42, Interest::READ).unwrap();
        let mut events = Vec::new();

        client.write_all(b"hi").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Level-triggered: unconsumed data keeps reporting ready.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events[0].readable);

        let mut buf = [0u8; 8];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hi");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0, "drained socket stops reporting readable");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, 1, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].hangup, "peer close surfaces as hangup");
        assert!(events[0].readable, "hangup also reads as readable (EOF)");
    }

    #[test]
    fn modify_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut poller = Poller::new().unwrap();
        // A fresh connected socket is writable but has nothing to read.
        poller.register(&server, 5, Interest::READ).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);

        poller.modify(&server, 9, Interest::READ_WRITE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 9, "modify rebinds the token");
        assert!(events[0].writable);

        poller.deregister(&server).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd reports nothing");
    }

    #[test]
    fn accept_readiness_on_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&listener, 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 3);
        assert!(events[0].readable, "pending accept is read-readiness");
        assert!(listener.accept().is_ok());
    }
}
