//! Scoped data-parallelism with atomic work-stealing chunk dispatch.
//!
//! The workspace's hot loops (all-pairs similarity, BootEA's candidate
//! refresh) write disjoint chunks of one output buffer. The old pattern —
//! statically splitting the buffer into `threads` equal parts — suffers
//! load imbalance when per-row cost is skewed: one unlucky worker finishes
//! last while the rest idle. Here the buffer is split into many *small*
//! chunks instead, and workers atomically claim the next unclaimed chunk
//! until none remain, so a slow chunk only delays its own worker.
//!
//! Scheduling never affects results: chunk `i` always covers the same
//! elements and is computed by a pure function of `i`, so output is
//! bit-identical for every thread count — a property the determinism test
//! matrix pins down.
//!
//! ```
//! let mut data = vec![0u64; 103];
//! openea_runtime::pool::parallel_chunks(&mut data, 10, 4, |chunk_idx, chunk| {
//!     for (k, x) in chunk.iter_mut().enumerate() {
//!         *x = (chunk_idx * 10 + k) as u64 * 2;
//!     }
//! });
//! assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// A raw pointer that may cross thread boundaries. Sound here because every
/// worker derives *disjoint* subslices from it (chunk indices are handed
/// out exactly once by the atomic counter).
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Splits `data` into contiguous chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` for each, on up to
/// `threads` scoped worker threads with atomic chunk claiming.
///
/// With `threads <= 1`, or a single chunk, runs inline on the caller's
/// thread with no synchronization at all.
///
/// Panics in `f` are propagated to the caller once all workers have
/// stopped claiming new chunks.
pub fn parallel_chunks<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk_len);
    let threads = threads.clamp(1, n_chunks);
    if threads == 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    let base = SendPtr(data.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let base = &base;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        let start = i * chunk_len;
                        let end = (start + chunk_len).min(len);
                        // SAFETY: chunk i spans [start, end) and the counter
                        // hands each i to exactly one worker, so the subslices
                        // are pairwise disjoint views into `data`, which the
                        // exclusive borrow keeps alive for the whole scope.
                        let chunk = unsafe {
                            std::slice::from_raw_parts_mut(base.0.add(start), end - start)
                        };
                        f(i, chunk);
                    }
                })
            })
            .collect();
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// A chunk length that yields several chunks per worker (so stealing can
/// balance skew) without making the dispatch overhead visible: aims for
/// `per_thread_chunks` chunks per thread, clamped to at least one item.
pub fn balanced_chunk_len(items: usize, threads: usize, per_thread_chunks: usize) -> usize {
    let tasks = threads.max(1) * per_thread_chunks.max(1);
    items.div_ceil(tasks.max(1)).max(1)
}

/// The default worker count: available parallelism, capped at 16.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for threads in [1, 2, 3, 8] {
            for len in [0usize, 1, 7, 64, 1000] {
                let mut data = vec![0u32; len];
                parallel_chunks(&mut data, 7, threads, |_, chunk| {
                    for x in chunk.iter_mut() {
                        *x += 1;
                    }
                });
                assert!(data.iter().all(|&x| x == 1), "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn chunk_indices_match_positions() {
        let mut data = vec![0usize; 57];
        parallel_chunks(&mut data, 5, 4, |i, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = i * 5 + k;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let compute = |threads: usize| {
            let mut data = vec![0.0f32; 501];
            parallel_chunks(&mut data, 13, threads, |i, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = ((i * 13 + k) as f32).sin();
                }
            });
            data
        };
        let one = compute(1);
        for t in [2, 4, 8] {
            assert_eq!(one, compute(t));
        }
    }

    #[test]
    fn skewed_work_is_balanced() {
        // Not a timing assertion — just exercises the stealing path with
        // wildly uneven chunk costs and checks correctness.
        let mut data = vec![0u64; 64];
        parallel_chunks(&mut data, 1, 4, |i, chunk| {
            let mut acc = 0u64;
            for k in 0..(i * i * 100) as u64 {
                acc = acc.wrapping_add(k);
            }
            chunk[0] = acc.wrapping_add(i as u64);
        });
        for (i, &x) in data.iter().enumerate() {
            let mut acc = 0u64;
            for k in 0..(i * i * 100) as u64 {
                acc = acc.wrapping_add(k);
            }
            assert_eq!(x, acc.wrapping_add(i as u64));
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let mut data = vec![0u8; 32];
        parallel_chunks(&mut data, 4, 4, |i, _| {
            if i == 3 {
                panic!("worker boom");
            }
        });
    }

    #[test]
    fn balanced_chunk_len_bounds() {
        assert_eq!(balanced_chunk_len(0, 4, 4), 1);
        assert!(balanced_chunk_len(1000, 4, 4) >= 1000 / 32);
        assert_eq!(balanced_chunk_len(5, 8, 4), 1);
    }
}
