//! Monotonic timing helpers for latency accounting.
//!
//! The serving layer and the benches need two things the std clock does not
//! hand out directly: a cheap monotonic microsecond counter anchored at a
//! fixed origin (so timestamps taken on different threads are comparable),
//! and a fixed-footprint latency histogram that yields stable percentile
//! estimates without storing every sample.
//!
//! [`MicrosHistogram`] uses power-of-two buckets: sample `v` lands in bucket
//! `⌈log2(v+1)⌉`, so the histogram is 64 counters regardless of sample count
//! and recording is lock-free (plain `u64` adds under an external lock, or
//! one per thread merged later via [`MicrosHistogram::merge`]). Percentile
//! queries return the geometric midpoint of the bucket holding the requested
//! rank — an estimate with bounded relative error (< 2x), which is what a
//! `/stats` endpoint needs; exact latencies of individual requests are never
//! reconstructed.

use std::time::Instant;

/// A monotonic clock anchored at its creation instant. All readings are
/// microseconds since that origin, so readings taken by different threads
/// sharing one `Monotonic` are directly comparable.
#[derive(Clone, Copy, Debug)]
pub struct Monotonic {
    origin: Instant,
}

impl Monotonic {
    /// Anchors a new clock at "now".
    pub fn start() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the anchor.
    pub fn micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Nanoseconds elapsed since the anchor — for intervals too short for
    /// the microsecond reading (e.g. a hot-swap pointer flip).
    pub fn nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Seconds elapsed since the anchor.
    pub fn seconds(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

impl Default for Monotonic {
    fn default() -> Self {
        Self::start()
    }
}

/// Number of power-of-two buckets: enough for any `u64` microsecond value.
const BUCKETS: usize = 65;

/// Fixed-footprint latency histogram over microsecond samples.
#[derive(Clone, Debug)]
pub struct MicrosHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for MicrosHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl MicrosHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket(us: u64) -> usize {
        // Bucket b covers [2^(b-1), 2^b - 1] for b >= 1; bucket 0 is {0}.
        (64 - us.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket(us)] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram (e.g. a per-thread shard) into this one.
    pub fn merge(&mut self, other: &MicrosHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Estimated `p`-th percentile (`0.0 < p <= 100.0`) in microseconds: the
    /// geometric midpoint of the bucket containing the sample of that rank.
    /// Returns 0 when the histogram is empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if b == 0 {
                    return 0;
                }
                let lo = 1u64 << (b - 1);
                let hi = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
                // Geometric midpoint, clamped to the true max so the top
                // bucket never reports past the largest observed sample.
                let mid = ((lo as f64) * (hi as f64)).sqrt().round() as u64;
                return mid.min(self.max_us).max(lo.min(self.max_us));
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_is_nondecreasing() {
        let m = Monotonic::start();
        let a = m.micros();
        let b = m.micros();
        assert!(b >= a);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = MicrosHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.percentile_us(99.0), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(MicrosHistogram::bucket(0), 0);
        assert_eq!(MicrosHistogram::bucket(1), 1);
        assert_eq!(MicrosHistogram::bucket(2), 2);
        assert_eq!(MicrosHistogram::bucket(3), 2);
        assert_eq!(MicrosHistogram::bucket(4), 3);
        assert_eq!(MicrosHistogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn percentile_has_bounded_relative_error() {
        let mut h = MicrosHistogram::new();
        for us in 1..=1000u64 {
            h.record(us);
        }
        let p50 = h.percentile_us(50.0);
        let p99 = h.percentile_us(99.0);
        // True p50 = 500, p99 = 990; log2 buckets bound the error by 2x.
        assert!((250..=1000).contains(&p50), "p50 estimate {p50}");
        assert!((495..=1000).contains(&p99), "p99 estimate {p99}");
        assert!(p99 >= p50);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1000);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut a = MicrosHistogram::new();
        let mut b = MicrosHistogram::new();
        let mut whole = MicrosHistogram::new();
        for us in [0u64, 3, 17, 400, 12_345, 7] {
            whole.record(us);
            if us % 2 == 0 {
                a.record(us);
            } else {
                b.record(us);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean_us(), whole.mean_us());
        assert_eq!(a.max_us(), whole.max_us());
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile_us(p), whole.percentile_us(p));
        }
    }
}
