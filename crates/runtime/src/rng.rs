//! Deterministic pseudo-random generation with a `rand`-compatible surface.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded by
//! expanding a single `u64` through **SplitMix64** — the exact construction
//! `rand`'s `SmallRng` used on 64-bit targets, so it is fast, passes BigCrush
//! and has a 2^256−1 period. Everything here is pure integer arithmetic:
//! streams are bit-identical across platforms, optimization levels and
//! releases, which is what makes same-seed reruns of the full benchmark
//! reproduce to the last bit.
//!
//! The trait split mirrors `rand` so call sites read identically:
//! [`RngCore`] is the raw `u64` source, [`Rng`] layers typed sampling on top
//! (`gen`, `gen_range`, `gen_bool`, `gen_gaussian`), [`SeedableRng`]
//! constructs from a seed, and [`SliceRandom`] adds `shuffle`/`choose` on
//! slices.
//!
//! ```
//! use openea_runtime::rng::{Rng, SeedableRng, SliceRandom, SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let d = rng.gen_range(0..6u32);
//! assert!(d < 6);
//! let mut deck: Vec<u32> = (0..52).collect();
//! deck.shuffle(&mut rng);
//! assert_eq!(deck.len(), 52);
//! ```

/// A raw source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derives the seed of an independent sub-stream from a base seed.
///
/// The `stream` index is whitened through SplitMix64, XOR-folded into the
/// base seed and whitened again, so nearby stream indices (0, 1, 2, …) land
/// on unrelated points of the seed space. This is the workspace's one way to
/// fan a single run seed out into many generators (per-batch negative
/// sampling, per-epoch shuffles, per-worker init) without the streams ever
/// sharing a prefix: consumers call
/// [`SmallRng::stream`]`(seed, stream)` instead of hand-crafting
/// `seed ^ constant` mixes.
#[inline]
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut s = stream;
    let mut folded = seed ^ splitmix64(&mut s);
    splitmix64(&mut folded)
}

/// xoshiro256\*\* — the workspace's one true generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// A generator on sub-stream `stream` of `seed` (see [`split_seed`]).
    /// Same `(seed, stream)` reproduces the same sequence bit-for-bit;
    /// different streams of one seed are statistically independent.
    #[inline]
    pub fn stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(split_seed(seed, stream))
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero state for every seed
        // (an all-zero state would be a fixed point of xoshiro).
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A deterministic counter "generator" for tests that need a predictable,
/// non-random word stream (mirror of `rand`'s mock `StepRng`).
#[derive(Clone, Debug)]
pub struct StepRng {
    v: u64,
    step: u64,
}

impl StepRng {
    pub fn new(initial: u64, step: u64) -> Self {
        Self { v: initial, step }
    }
}

impl RngCore for StepRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let r = self.v;
        self.v = self.v.wrapping_add(self.step);
        r
    }
}

/// Types that can be drawn directly from the raw word stream via
/// [`Rng::gen`]. Floats are uniform in `[0, 1)`.
pub trait FromRandom {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRandom for usize {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa precision.
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa precision.
    #[inline]
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Draws a uniform integer in `[0, span)` without modulo bias (Lemire's
/// multiply-shift with rejection).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges that [`Rng::gen_range`] accepts. Implemented for `a..b` and
/// `a..=b` over the primitive integers and floats the workspace uses.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = FromRandom::from_random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = FromRandom::from_random(rng);
                // Lerp over the closed interval; u ∈ [0,1) keeps the result
                // within bounds and the endpoint bias is below one ulp.
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Typed sampling on top of any [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Draws a value of `T` ([`FromRandom`]); floats are uniform `[0, 1)`.
    #[inline]
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`). Panics on an empty
    /// range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = FromRandom::from_random(self);
        u < p
    }

    /// One standard Gaussian draw via the Box–Muller transform.
    #[inline]
    fn gen_gaussian(&mut self) -> f64
    where
        Self: Sized,
    {
        standard_gaussian(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// One standard-normal draw via the Box–Muller transform.
#[inline]
pub fn standard_gaussian<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = FromRandom::from_random(rng);
    let u2: f64 = FromRandom::from_random(rng);
    // Guard the log: u1 ∈ [0,1), so flip to (0,1].
    let r = (-2.0 * (1.0 - u1).ln()).sqrt();
    r * (core::f64::consts::TAU * u2).cos()
}

/// `shuffle`/`choose` on slices (mirror of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// Uniform Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// A distribution that can be sampled with any generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Samples indices `0..weights.len()` proportionally to non-negative
/// weights (inverse-CDF over the cumulative sums).
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Errors on an empty list, a negative/non-finite weight, or an
    /// all-zero total.
    pub fn new(weights: &[f64]) -> Result<Self, &'static str> {
        if weights.is_empty() {
            return Err("WeightedIndex: no weights");
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err("WeightedIndex: invalid weight");
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err("WeightedIndex: total weight is zero");
        }
        Ok(Self { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = FromRandom::from_random(rng);
        let x = u * total;
        // First index whose cumulative weight exceeds x; zero-weight
        // entries (cumulative == x on their left edge) are never selected.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    pub mean: f64,
    pub std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err("Normal: invalid standard deviation");
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_gaussian(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn known_xoshiro_vector() {
        // Seeding with SplitMix64(0) must produce the reference xoshiro256**
        // stream for that state — pins the implementation bit-for-bit.
        let mut sm = 0u64;
        let s0 = splitmix64(&mut sm);
        assert_eq!(s0, 0xE220A8397B1DCDAF, "splitmix64 reference vector");
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let again = SmallRng::seed_from_u64(0).next_u64();
        assert_eq!(first, again);
    }

    #[test]
    fn streams_from_one_seed_are_reproducible_and_independent() {
        // Reproducible: the same (seed, stream) pair yields the same
        // sequence bit-for-bit.
        let mut a = SmallRng::stream(42, 3);
        let mut b = SmallRng::stream(42, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Independent: adjacent streams (and the reserved u64::MAX shuffle
        // stream) of one seed produce pairwise-distinct sequences, and no
        // stream coincides with the base generator.
        let take = |mut r: SmallRng| (0..16).map(|_| r.next_u64()).collect::<Vec<_>>();
        let streams = [
            take(SmallRng::seed_from_u64(42)),
            take(SmallRng::stream(42, 0)),
            take(SmallRng::stream(42, 1)),
            take(SmallRng::stream(42, 2)),
            take(SmallRng::stream(42, u64::MAX)),
            take(SmallRng::stream(43, 0)),
        ];
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                assert_ne!(streams[i], streams[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_seed_mixes_both_arguments() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed(1, 0), split_seed(1, 1));
        // Not the trivial fold: stream 0 must still be whitened away from
        // the base seed itself.
        assert_ne!(split_seed(7, 0), 7);
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = rng.gen_range(0..6u32);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&x));
        }
        let mut hit_hi = false;
        for _ in 0..200 {
            if rng.gen_range(0..=1u8) == 1 {
                hit_hi = true;
            }
        }
        assert!(hit_hi, "inclusive upper bound reachable");
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            let y = rng.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&y));
            let z = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        let norm = Normal::new(5.0, 2.0).unwrap();
        let m = (0..n).map(|_| norm.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 5.0).abs() < 0.1, "normal mean {m}");
    }

    #[test]
    fn shuffle_is_permutation_and_seed_stable() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        let mut v2: Vec<u32> = (0..100).collect();
        v2.shuffle(&mut SmallRng::seed_from_u64(13));
        assert_eq!(v, v2);
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = SmallRng::seed_from_u64(14);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let opts = [1u8, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*opts.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(15);
        let w = WeightedIndex::new(&[8.0, 1.0, 0.0, 1.0]).unwrap();
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight index drawn");
        assert!(counts[0] > 6 * counts[1].max(1), "{counts:?}");
        assert!(counts[1] > 0 && counts[3] > 0);
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0]).is_err());
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(1, 1);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
        assert_eq!(r.next_u64(), 3);
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut rng = SmallRng::seed_from_u64(16);
        let via_ref = draw(&mut &mut rng);
        assert!(via_ref < 10);
    }
}
