//! A minimal JSON encoder/decoder for the benchmark result artifacts.
//!
//! Scope is deliberately small: the values the bench harness writes under
//! `results/` (arrays, objects, strings, numbers, bools) and nothing else —
//! no zero-copy deserialization, no derive machinery. Structs opt in by
//! implementing [`ToJson`] by hand, which keeps field order explicit and
//! the supply-chain surface at zero.
//!
//! The pretty printer is format-compatible with the one that produced the
//! checked-in `results/*.json` files (2-space indent, `": "` separators,
//! every array element on its own line, floats printed as their shortest
//! round-trippable form with a `.0` suffix on integral values). Decoding
//! distinguishes integers from floats so that `encode(decode(x))` is a
//! fixed point on those files — the golden-file test pins this.
//!
//! ```
//! use openea_runtime::json::{parse, Json};
//!
//! let v = parse(r#"{"hits": [1, 0.5], "name": "MTransE"}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("MTransE"));
//! assert_eq!(v.get("hits").unwrap().as_array().unwrap().len(), 2);
//! ```

use std::fmt::Write as _;

/// A parsed JSON document. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number lexed without `.`/`e` and fitting `i64`.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric value of `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/∞; mirror serde_json's Value behavior.
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    // Rust's shortest-roundtrip Display prints integral floats bare ("4");
    // keep them typed as floats on the wire ("4.0").
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A decode failure with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scanned span is valid UTF-8 (input is &str and we only
            // stopped on ASCII boundaries).
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Parses the payload of `\uXXXX` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into a [`Json`] tree — the workspace's replacement for
/// `serde::Serialize`. Implemented by hand on the few result structs.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Serializes any [`ToJson`] value with 2-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

impl_tojson_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! impl_tojson_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}

impl_tojson_tuple!(A: 0);
impl_tojson_tuple!(A: 0, B: 1);
impl_tojson_tuple!(A: 0, B: 1, C: 2);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Builds a [`Json::Object`] from `(key, value)` pairs, preserving order —
/// the helper hand-written `ToJson` impls use.
pub fn object<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("4.5").unwrap(), Json::Float(4.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn int_float_distinction_survives_roundtrip() {
        let v = parse("[0, 0.0, 3, 3.5]").unwrap();
        assert_eq!(
            v,
            Json::Array(vec![
                Json::Int(0),
                Json::Float(0.0),
                Json::Int(3),
                Json::Float(3.5)
            ])
        );
        assert_eq!(v.to_string_pretty(), "[\n  0,\n  0.0,\n  3,\n  3.5\n]");
    }

    #[test]
    fn pretty_format_matches_serde_style() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": true}, "d": [], "e": {}}"#).unwrap();
        let expect = "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": true\n  },\n  \"d\": [],\n  \"e\": {}\n}";
        assert_eq!(v.to_string_pretty(), expect);
    }

    #[test]
    fn encode_decode_encode_is_fixed_point() {
        let docs = [
            r#"{"name": "EN-FR-600 (V1)", "hits1_mean": 0.19901368630726723, "folds": 2}"#,
            r#"[[0, [0.06097560975609756, 0.11333333333333333]], [1, [0.5]]]"#,
            r#"{"x": 4.0, "y": -0.0051, "z": 1e-9}"#,
        ];
        for doc in docs {
            let once = parse(doc).unwrap().to_string_pretty();
            let twice = parse(&once).unwrap().to_string_pretty();
            assert_eq!(once, twice);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("a \"quote\"\nand \\ tab\t and unicode é λ \u{1}".into());
        let text = original.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), original);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "01x",
            "[1] tail",
            r#""unterminated"#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_pretty(), "null");
    }

    #[test]
    fn tojson_composes() {
        let rows = vec![("a".to_owned(), 1usize, 0.5f64), ("b".to_owned(), 2, 1.0)];
        let text = to_string_pretty(&rows);
        let back = parse(&text).unwrap();
        let arr = back.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].as_array().unwrap()[0].as_str(), Some("a"));
        assert_eq!(arr[1].as_array().unwrap()[2].as_f64(), Some(1.0));
    }

    #[test]
    fn object_lookup() {
        let v = object([("k", Json::Int(7)), ("s", Json::Str("x".into()))]);
        assert_eq!(v.get("k"), Some(&Json::Int(7)));
        assert_eq!(v.get("missing"), None);
    }
}
