//! Golden-file roundtrip: every committed `results/*.json` document must
//! survive encode→decode→encode losslessly — same structure, same numeric
//! formatting, byte-for-byte. This pins the codec to the format the harness
//! has always written (2-space pretty printing, shortest-roundtrip floats
//! with a `.0` suffix on integral values, i64-exact integers).

use openea_runtime::json::{parse, Json};
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

fn golden_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(results_dir())
        .expect("results/ directory with golden files")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn golden_results_roundtrip_byte_identical() {
    let files = golden_files();
    assert!(
        files.len() >= 10,
        "expected a representative set, got {files:?}"
    );
    for path in files {
        let original = std::fs::read_to_string(&path).unwrap();
        let value =
            parse(&original).unwrap_or_else(|e| panic!("{}: parse failed: {e:?}", path.display()));
        let encoded = value.to_string_pretty();
        assert_eq!(
            encoded,
            original,
            "{}: re-encoding changed the document",
            path.display()
        );
        // And the encoder output itself is a fixed point.
        let reparsed = parse(&encoded).unwrap();
        assert_eq!(
            reparsed,
            value,
            "{}: decode(encode(v)) != v",
            path.display()
        );
        assert_eq!(reparsed.to_string_pretty(), encoded, "{}", path.display());
    }
}

#[test]
fn golden_results_preserve_number_kinds() {
    // Counts stay integers, measurements stay floats: spot-check table2.
    let path = results_dir().join("table2.json");
    let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let rows = doc.as_array().expect("table2 is an array of rows");
    assert!(!rows.is_empty());
    let stats = rows[0].as_array().expect("row is [label, stats]")[1].clone();
    assert!(matches!(stats.get("entities"), Some(Json::Int(_))));
    assert!(matches!(stats.get("avg_degree"), Some(Json::Float(_))));
}
