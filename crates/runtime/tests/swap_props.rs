//! Property suite for [`SwapCell`]: the concurrency contract behind
//! zero-downtime snapshot hot-swap, checked under randomized reader/writer
//! schedules with the `props!` harness.
//!
//! The three properties the serving layer leans on:
//!
//! 1. **Publish/retire ordering** — `swap` returns retired values in exact
//!    publish order, and every published value is retired exactly once.
//! 2. **No use-after-retire** — a reader holding a loaded `Arc` always
//!    observes a live (never dropped) value: the grace period must prevent
//!    the writer from reclaiming a value a reader is still acquiring, and
//!    reference counting keeps it alive for as long as the clone is held.
//! 3. **Reader snapshot consistency** — each load observes exactly one
//!    published value (never a torn mix), and consecutive loads on one
//!    thread never move backwards through the publish order.

use openea_runtime::swap::SwapCell;
use openea_runtime::testkit::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const CANARY: u64 = 0xFEED_FACE_CAFE_BEEF;

/// A published value that proves its own liveness: `Drop` flips its slot
/// in an external registry, so any reader holding a clone of a reclaimed
/// value can catch the use-after-retire.
struct Tracked {
    seq: usize,
    canary: u64,
    /// Redundant copy of `seq`; a torn read (impossible by construction —
    /// loads are pointer snapshots) would surface as a mismatch.
    seq_echo: usize,
    live: Arc<Vec<AtomicBool>>,
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(seq: usize, live: &Arc<Vec<AtomicBool>>, drops: &Arc<AtomicUsize>) -> Self {
        live[seq].store(true, Ordering::SeqCst);
        Self {
            seq,
            canary: CANARY,
            seq_echo: seq,
            live: Arc::clone(live),
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        assert_eq!(self.canary, CANARY, "double drop or corrupted value");
        self.canary = 0;
        self.live[self.seq].store(false, Ordering::SeqCst);
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Runs one randomized schedule: `readers` threads loading in a loop while
/// the writer publishes `swaps` successors. Returns the retired sequence
/// observed by the writer.
fn hammer(readers: usize, swaps: usize, reads_per_reader: usize) -> Vec<usize> {
    let live: Arc<Vec<AtomicBool>> =
        Arc::new((0..=swaps).map(|_| AtomicBool::new(false)).collect());
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = Arc::new(SwapCell::new(Arc::new(Tracked::new(0, &live, &drops))));
    let stop = Arc::new(AtomicBool::new(false));

    let retired: Vec<usize> = std::thread::scope(|s| {
        for _ in 0..readers {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last_seq = 0usize;
                let mut reads = 0usize;
                while !(stop.load(Ordering::Relaxed) && reads >= reads_per_reader) {
                    let v = cell.load();
                    // Snapshot consistency: one coherent published value.
                    assert_eq!(v.canary, CANARY, "reader saw a reclaimed value");
                    assert_eq!(v.seq, v.seq_echo, "torn value");
                    // No use-after-retire: while we hold the Arc, the value
                    // must still be registered live.
                    assert!(
                        v.live[v.seq].load(Ordering::SeqCst),
                        "value {} dropped while a reader holds it",
                        v.seq
                    );
                    // Per-thread monotonicity through the publish order.
                    assert!(
                        v.seq >= last_seq,
                        "loads went backwards: {} after {}",
                        v.seq,
                        last_seq
                    );
                    last_seq = v.seq;
                    reads += 1;
                }
            });
        }
        let retired: Vec<usize> = (1..=swaps)
            .map(|seq| {
                let old = cell.swap(Arc::new(Tracked::new(seq, &live, &drops)));
                old.seq
            })
            .collect();
        stop.store(true, Ordering::SeqCst);
        retired
    });

    // Readers joined (scope end) and the writer dropped its retired clones:
    // everything but the final published value must be reclaimed.
    assert_eq!(drops.load(Ordering::SeqCst), swaps, "one drop per retire");
    assert!(
        live[swaps].load(Ordering::SeqCst),
        "current value stays live"
    );
    drop(cell);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        swaps + 1,
        "dropping the cell reclaims the final value"
    );
    assert!((0..=swaps).all(|s| !live[s].load(Ordering::SeqCst)));
    retired
}

props! {
    #![cases = 12]

    #[test]
    fn publish_retire_ordering_holds_under_concurrency(
        readers in 1usize..=4,
        swaps in 1usize..=24,
        reads in 50usize..=300,
    ) {
        let retired = hammer(readers, swaps, reads);
        // Retire order is exactly publish order, each value exactly once.
        let want: Vec<usize> = (0..swaps).collect();
        prop_assert_eq!(retired, want);
    }
}

props! {
    #![cases = 8]

    #[test]
    fn heavy_reader_hammering_never_sees_retired_values(
        swaps in 10usize..=40,
    ) {
        // Fixed high reader count: the adversarial case for the grace
        // period is many readers racing the pointer flip.
        hammer(8, swaps, 500);
    }
}

#[test]
fn single_threaded_swap_chain_retires_in_order() {
    let retired = hammer(0, 16, 0);
    assert_eq!(retired, (0..16).collect::<Vec<_>>());
}

#[test]
fn load_is_wait_free_while_writer_holds_no_lock() {
    // A reader loading between swaps must observe either generation and
    // never block: run interleaved load/swap on one thread to pin the
    // sequential semantics the concurrent properties build on.
    let live: Arc<Vec<AtomicBool>> = Arc::new((0..4).map(|_| AtomicBool::new(false)).collect());
    let drops = Arc::new(AtomicUsize::new(0));
    let cell = SwapCell::new(Arc::new(Tracked::new(0, &live, &drops)));
    for seq in 1..4 {
        let before = cell.load();
        assert_eq!(before.seq, seq - 1);
        let old = cell.swap(Arc::new(Tracked::new(seq, &live, &drops)));
        assert_eq!(old.seq, seq - 1);
        assert_eq!(cell.load().seq, seq);
        drop(old);
        // `before` still holds the retired generation alive.
        assert!(before.live[seq - 1].load(Ordering::SeqCst));
        drop(before);
        assert!(!live[seq - 1].load(Ordering::SeqCst));
    }
}
