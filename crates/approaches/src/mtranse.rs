//! MTransE \[10\]: triple-based embedding (TransE) per KG plus an embedding-
//! space transformation learned from the seed alignment. Euclidean metric,
//! supervised. The first embedding-based entity-alignment approach.
//!
//! This module also hosts the Figure-11 harness: MTransE with its TransE
//! replaced by any other relation model (TransH/R/D, DistMult, HolE, SimplE,
//! RotatE, ProjE, ConvE).

use crate::common::{Approach, ApproachOutput, Requirements, RunConfig, TrainError};
use crate::engine::RunContext;
use crate::transformation::{ModelFactory, TransformationHarness};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair};
use openea_models::{ConvE, DistMult, HolE, ProjE, RotatE, SimplE, TransD, TransE, TransH, TransR};
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

/// Which relation model powers the MTransE-style harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelModelKind {
    TransE,
    TransH,
    TransR,
    TransD,
    DistMult,
    HolE,
    SimplE,
    RotatE,
    ProjE,
    ConvE,
}

impl RelModelKind {
    /// The models evaluated in Figure 11 (plus the TransE baseline).
    pub const FIGURE11: [RelModelKind; 9] = [
        RelModelKind::TransE,
        RelModelKind::TransH,
        RelModelKind::TransR,
        RelModelKind::TransD,
        RelModelKind::HolE,
        RelModelKind::SimplE,
        RelModelKind::RotatE,
        RelModelKind::ProjE,
        RelModelKind::ConvE,
    ];

    pub fn label(self) -> &'static str {
        match self {
            RelModelKind::TransE => "TransE",
            RelModelKind::TransH => "TransH",
            RelModelKind::TransR => "TransR",
            RelModelKind::TransD => "TransD",
            RelModelKind::DistMult => "DistMult",
            RelModelKind::HolE => "HolE",
            RelModelKind::SimplE => "SimplE",
            RelModelKind::RotatE => "RotatE",
            RelModelKind::ProjE => "ProjE",
            RelModelKind::ConvE => "ConvE",
        }
    }

    /// A factory building this model kind.
    pub fn factory(self) -> Box<ModelFactory> {
        macro_rules! boxed {
            ($ctor:expr) => {
                Box::new(move |n: usize, r: usize, d: usize, seed: u64| {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    #[allow(clippy::redundant_closure_call)]
                    let m: Box<dyn openea_models::RelationModel> =
                        Box::new(($ctor)(n, r, d, &mut rng));
                    m
                })
            };
        }
        match self {
            RelModelKind::TransE => {
                boxed!(|n, r, d, rng: &mut SmallRng| TransE::new(n, r, d, 1.0, rng))
            }
            RelModelKind::TransH => {
                boxed!(|n, r, d, rng: &mut SmallRng| TransH::new(n, r, d, 1.0, rng))
            }
            RelModelKind::TransR => {
                boxed!(|n, r, d, rng: &mut SmallRng| TransR::new(n, r, d, 1.0, rng))
            }
            RelModelKind::TransD => {
                boxed!(|n, r, d, rng: &mut SmallRng| TransD::new(n, r, d, 1.0, rng))
            }
            RelModelKind::DistMult => {
                boxed!(|n, r, d, rng: &mut SmallRng| DistMult::new(n, r, d, rng))
            }
            RelModelKind::HolE => boxed!(|n, r, d, rng: &mut SmallRng| HolE::new(n, r, d, rng)),
            RelModelKind::SimplE => {
                boxed!(|n, r, d, rng: &mut SmallRng| SimplE::new(n, r, d / 2, rng))
            }
            RelModelKind::RotatE => {
                boxed!(|n, r, d, rng: &mut SmallRng| RotatE::new(n, r, d, 2.0, rng))
            }
            RelModelKind::ProjE => {
                boxed!(|n, r, d, rng: &mut SmallRng| ProjE::new(n, r, d, 1.0, rng))
            }
            RelModelKind::ConvE => {
                boxed!(|n, r, d, rng: &mut SmallRng| ConvE::new(n, r, d, 1.0, rng))
            }
        }
    }
}

/// MTransE, parameterized by the relation model (TransE in the paper;
/// other kinds reproduce Figure 11).
pub struct MTransE {
    pub model: RelModelKind,
    /// Constrain the transformation to a rotation (MTransE's orthogonality
    /// variant, realized via orthogonal Procrustes projection).
    pub orthogonal: bool,
}

impl Default for MTransE {
    fn default() -> Self {
        Self {
            model: RelModelKind::TransE,
            orthogonal: false,
        }
    }
}

impl Approach for MTransE {
    fn name(&self) -> &'static str {
        "MTransE"
    }

    fn requirements(&self) -> Requirements {
        Requirements::RELATION_BASED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let factory = self.model.factory();
        let h = TransformationHarness {
            factory: &factory,
            label: self.name(),
            metric: Metric::Euclidean,
            cycle_weight: 0.0,
            orthogonal: self.orthogonal,
            update_entities: true,
            requirements: self.requirements(),
        };
        h.try_run(pair, split, cfg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Req;

    #[test]
    fn figure11_list_contains_nine_models() {
        assert_eq!(RelModelKind::FIGURE11.len(), 9);
        let labels: std::collections::HashSet<_> =
            RelModelKind::FIGURE11.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn factories_build_models_of_right_shape() {
        for kind in RelModelKind::FIGURE11 {
            let f = kind.factory();
            let m = f(10, 3, 16, 1);
            assert_eq!(m.num_entities(), 10, "{}", kind.label());
            // Entity dim may exceed the nominal dim (SimplE halves then
            // doubles; RotatE interleaves), but must be nonzero.
            assert!(m.dim() >= 8, "{}", kind.label());
        }
    }

    #[test]
    fn requirements_match_table9() {
        let m = MTransE::default();
        let r = m.requirements();
        assert_eq!(r.rel_triples, Req::Mandatory);
        assert_eq!(r.attr_triples, Req::NotApplicable);
        assert_eq!(r.pre_aligned_entities, Req::Mandatory);
    }
}
