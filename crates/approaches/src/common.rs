//! Shared infrastructure for all approaches: run configuration, the unified
//! id space with the four combination modes, early stopping on validation
//! Hits@1, literal feature extraction and output evaluation.

use openea_align::{
    precision_recall_f1, rank_eval_streaming, Metric, PrfScores, RankEval, SimilarityMatrix,
    TopKMatrix,
};
use openea_core::{AlignedPair, EntityId, FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::{RawTriple, UniformSampler};
use openea_math::vecops;
use openea_math::EmbeddingTable;
use openea_models::literal::{LiteralEncoder, WordVectors};
pub use openea_models::trainer::{
    train_epoch_batched, EpochTrace, StopReason, TraceRecorder, TrainError, TrainOptions,
    TrainTrace,
};
use openea_runtime::rng::{RngCore, SmallRng};

use crate::engine::{Lineage, RunContext, WarmStart};
pub use openea_models::traits::EpochStats;
use std::collections::{HashMap, HashSet};

/// Requirement level of an input resource (Table 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Req {
    Mandatory,
    Optional,
    NotApplicable,
    /// Mandatory only for cross-lingual entity alignment.
    CrossLingualOnly,
}

impl Req {
    pub fn symbol(self) -> &'static str {
        match self {
            Req::Mandatory => "*",
            Req::Optional => "o",
            Req::NotApplicable => " ",
            Req::CrossLingualOnly => "^",
        }
    }
}

/// The required-information matrix of one approach (one column of Table 9).
#[derive(Clone, Copy, Debug)]
pub struct Requirements {
    pub rel_triples: Req,
    pub attr_triples: Req,
    pub pre_aligned_entities: Req,
    pub pre_aligned_properties: Req,
    pub word_embeddings: Req,
}

impl Default for Requirements {
    /// Everything optional — the neutral column for internal harnesses that
    /// are not one of the Table 9 approaches.
    fn default() -> Self {
        use Req::Optional;
        Self::of(Optional, Optional, Optional, Optional, Optional)
    }
}

impl Requirements {
    /// Positional Table 9 column: relation triples, attribute triples,
    /// pre-aligned entities, pre-aligned properties, word embeddings.
    pub const fn of(rel: Req, attr: Req, ents: Req, props: Req, words: Req) -> Self {
        Self {
            rel_triples: rel,
            attr_triples: attr,
            pre_aligned_entities: ents,
            pre_aligned_properties: props,
            word_embeddings: words,
        }
    }

    /// Table 9 column shared by the purely structural approaches: relation
    /// triples and seed entity pairs, nothing else. Rows that differ in one
    /// cell derive from this with struct-update syntax.
    pub const RELATION_BASED: Self = Self::of(
        Req::Mandatory,
        Req::NotApplicable,
        Req::Mandatory,
        Req::NotApplicable,
        Req::NotApplicable,
    );

    /// Table 9 column shared by the literal-augmented approaches: structure
    /// optional, seed entities mandatory, word embeddings useful only when
    /// the KGs cross a language boundary.
    pub const LITERAL_AUGMENTED: Self = Self::of(
        Req::Optional,
        Req::Optional,
        Req::Mandatory,
        Req::Optional,
        Req::CrossLingualOnly,
    );
}

/// Hyper-parameters shared by every run (Table 4 analogue).
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Maximum training epochs (paper: 2000; library default is scaled to
    /// its smaller datasets).
    pub max_epochs: usize,
    /// Early-stopping cadence: validation Hits@1 is checked every this many
    /// epochs (paper: 10).
    pub check_every: usize,
    /// Consecutive non-improving checks tolerated before stopping.
    pub patience: usize,
    pub lr: f32,
    /// Negatives per positive triple.
    pub negs: usize,
    /// Margin for ranking losses.
    pub margin: f32,
    /// Figure 6 ablation switch: disable attribute embedding.
    pub use_attributes: bool,
    /// Table 8 feature study: disable relation triples.
    pub use_relations: bool,
    /// Pre-trained (cross-lingual) word vectors for literal encoders.
    pub word_vectors: WordVectors,
    /// Cap on positives per mini-batch of the training engine. The
    /// effective size is `triples / batches_per_epoch` (OpenEA's fixed
    /// batch *count*), clamped to this — small KGs keep near-serial SGD
    /// dynamics, large ones get batches worth parallelizing.
    pub batch_size: usize,
    /// Mini-batches per epoch the effective batch size aims for.
    pub batches_per_epoch: usize,
    /// Worker threads for similarity search and batched training.
    pub threads: usize,
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            max_epochs: 120,
            check_every: 10,
            patience: 2,
            lr: 0.02,
            negs: 5,
            margin: 1.0,
            use_attributes: true,
            use_relations: true,
            word_vectors: WordVectors::hash_only(32),
            batch_size: 4096,
            batches_per_epoch: 30,
            threads: 4,
            seed: 42,
        }
    }
}

impl RunConfig {
    /// Rejects configurations the driver engine cannot run: a zero
    /// `check_every` would divide by zero in the validation cadence, and a
    /// zero `dim` or `max_epochs` could never produce trained embeddings.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.check_every == 0 {
            return Err(TrainError::ZeroCheckEvery);
        }
        if self.dim == 0 {
            return Err(TrainError::ZeroDim);
        }
        if self.max_epochs == 0 {
            return Err(TrainError::ZeroMaxEpochs);
        }
        Ok(())
    }

    pub fn literal_encoder(&self) -> LiteralEncoder {
        LiteralEncoder::new(self.word_vectors.clone())
    }

    /// The batched-trainer options implied by this configuration for a KG
    /// (or unified space) with `n_triples` positive triples.
    pub fn train_options(&self, n_triples: usize) -> TrainOptions {
        let aimed = n_triples.div_ceil(self.batches_per_epoch.max(1));
        TrainOptions {
            lr: self.lr,
            negs_per_pos: self.negs,
            batch_size: aimed.clamp(1, self.batch_size.max(1)),
            threads: self.threads,
            ..TrainOptions::default()
        }
    }
}

/// The result of running an approach: final entity embeddings for both KGs
/// in a comparable space, plus per-iteration augmentation quality for the
/// semi-supervised approaches (Figure 7).
#[derive(Clone, Debug)]
pub struct ApproachOutput {
    pub dim: usize,
    pub metric: Metric,
    /// Row-major `n1 × dim` embeddings of KG1 entities.
    pub emb1: Vec<f32>,
    /// Row-major `n2 × dim` embeddings of KG2 entities.
    pub emb2: Vec<f32>,
    /// Precision/recall/F1 of the augmented seed alignment per
    /// semi-supervised iteration (empty for supervised approaches).
    pub augmentation: Vec<PrfScores>,
    /// Per-epoch telemetry of the (primary) relation-model training loop.
    /// Default (empty) for approaches that do not train through the batched
    /// engine.
    pub trace: TrainTrace,
    /// Provenance when the run warm-started from a snapshot: parent
    /// generation and cumulative epoch count, stamped by the engine.
    /// `None` for cold runs, keeping their artifacts byte-identical to the
    /// pre-lineage format.
    pub lineage: Option<Lineage>,
}

impl ApproachOutput {
    /// An output with no augmentation history and an empty trace (the engine
    /// attaches the trace after training).
    pub fn new(dim: usize, metric: Metric, emb1: Vec<f32>, emb2: Vec<f32>) -> Self {
        Self {
            dim,
            metric,
            emb1,
            emb2,
            augmentation: Vec::new(),
            trace: TrainTrace::default(),
            lineage: None,
        }
    }

    /// FNV-1a hash over the exact bit patterns of both embedding matrices
    /// (plus `dim` and the metric tag). Two outputs hash equal iff they are
    /// bit-identical — the regression oracle for the driver-engine golden
    /// tests and the cross-thread determinism contract.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.dim as u64).to_le_bytes());
        eat(&[self.metric as u8]);
        for emb in [&self.emb1, &self.emb2] {
            eat(&(emb.len() as u64).to_le_bytes());
            for v in emb {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }

    pub fn vec1(&self, e: EntityId) -> &[f32] {
        &self.emb1[e.idx() * self.dim..(e.idx() + 1) * self.dim]
    }

    pub fn vec2(&self, e: EntityId) -> &[f32] {
        &self.emb2[e.idx() * self.dim..(e.idx() + 1) * self.dim]
    }

    /// Gathers the given entities' embeddings into contiguous row-major
    /// buffers (sources from KG1, targets from KG2) for the kernel layer.
    pub fn gather(&self, sources: &[EntityId], targets: &[EntityId]) -> (Vec<f32>, Vec<f32>) {
        let mut src = Vec::with_capacity(sources.len() * self.dim);
        for &e in sources {
            src.extend_from_slice(self.vec1(e));
        }
        let mut dst = Vec::with_capacity(targets.len() * self.dim);
        for &e in targets {
            dst.extend_from_slice(self.vec2(e));
        }
        (src, dst)
    }

    /// Similarity matrix between the given source and target entities.
    pub fn similarity(
        &self,
        sources: &[EntityId],
        targets: &[EntityId],
        threads: usize,
    ) -> SimilarityMatrix {
        let (src, dst) = self.gather(sources, targets);
        SimilarityMatrix::compute(&src, &dst, self.dim, self.metric, threads)
    }

    /// Streaming top-`k` targets per source among the given entities —
    /// O(sources·k) memory, same scores and tie rule as
    /// [`ApproachOutput::similarity`].
    pub fn topk(
        &self,
        sources: &[EntityId],
        targets: &[EntityId],
        k: usize,
        threads: usize,
    ) -> TopKMatrix {
        let (src, dst) = self.gather(sources, targets);
        TopKMatrix::compute(&src, &dst, self.dim, self.metric, k, threads)
    }
}

/// Evaluates an output on the fold's test pairs with the OpenEA convention:
/// candidates are the test targets. Ranks are streamed through the kernel
/// layer, so the `test × test` similarity matrix is never materialized.
pub fn evaluate_output(out: &ApproachOutput, test: &[AlignedPair], threads: usize) -> RankEval {
    let sources: Vec<EntityId> = test.iter().map(|&(a, _)| a).collect();
    let targets: Vec<EntityId> = test.iter().map(|&(_, b)| b).collect();
    let (src, dst) = out.gather(&sources, &targets);
    let gold: Vec<usize> = (0..test.len()).collect();
    rank_eval_streaming(&src, &dst, out.dim, out.metric, &gold, threads)
}

/// How the two KGs' parameters are combined (Sect. 2.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combination {
    /// Independent ids; the alignment module adds a calibration loss.
    Calibration,
    /// Seed pairs share one parameter vector.
    Sharing,
    /// Seed entities are swapped in each other's triples (extra triples).
    Swapping,
}

/// A unified id space over both KGs of a pair.
#[derive(Clone, Debug)]
pub struct UnifiedSpace {
    pub num_entities: usize,
    pub num_relations: usize,
    /// Training triples over unified ids (KG1 + KG2, plus swaps if any).
    pub triples: Vec<RawTriple>,
    map1: Vec<u32>,
    map2: Vec<u32>,
}

impl UnifiedSpace {
    /// Builds the space. `seeds` drive sharing/swapping; with
    /// [`Combination::Calibration`] they are ignored here (the approach adds
    /// its own loss).
    pub fn build(pair: &KgPair, seeds: &[AlignedPair], mode: Combination) -> Self {
        let n1 = pair.kg1.num_entities();
        let n2 = pair.kg2.num_entities();
        let r1 = pair.kg1.num_relations();
        let r2 = pair.kg2.num_relations();

        let map1: Vec<u32> = (0..n1 as u32).collect();
        let mut map2: Vec<u32> = Vec::with_capacity(n2);
        let mut num_entities = n1;
        match mode {
            Combination::Sharing => {
                let mut shared: HashMap<EntityId, u32> = HashMap::with_capacity(seeds.len());
                for &(a, b) in seeds {
                    shared.insert(b, a.0);
                }
                for e in 0..n2 {
                    match shared.get(&EntityId::from_idx(e)) {
                        Some(&uid) => map2.push(uid),
                        None => {
                            map2.push(num_entities as u32);
                            num_entities += 1;
                        }
                    }
                }
            }
            _ => {
                map2.extend((n1 as u32..(n1 + n2) as u32).clone());
                num_entities = n1 + n2;
            }
        }

        let mut triples =
            Vec::with_capacity(pair.kg1.num_rel_triples() + pair.kg2.num_rel_triples());
        for t in pair.kg1.rel_triples() {
            triples.push((map1[t.head.idx()], t.rel.0, map1[t.tail.idx()]));
        }
        for t in pair.kg2.rel_triples() {
            triples.push((map2[t.head.idx()], r1 as u32 + t.rel.0, map2[t.tail.idx()]));
        }

        let mut space = Self {
            num_entities,
            num_relations: r1 + r2,
            triples,
            map1,
            map2,
        };
        if mode == Combination::Swapping {
            let swaps = space.swap_triples(pair, seeds);
            space.triples.extend(swaps);
        }
        space
    }

    /// Swapped triples for the given aligned pairs (Sect. 2.2.3): for
    /// `(e1, e2)` and a KG1 triple `(e1, r, x)` emit `(e2, r, x)`, and
    /// symmetrically for KG2 triples.
    pub fn swap_triples(&self, pair: &KgPair, pairs: &[AlignedPair]) -> Vec<RawTriple> {
        let r1 = pair.kg1.num_relations() as u32;
        let mut out = Vec::new();
        for &(a, b) in pairs {
            let ua = self.uid1(a);
            let ub = self.uid2(b);
            if ua == ub {
                continue; // shared parameters: swapping is a no-op
            }
            for &(r, t) in pair.kg1.out_edges(a) {
                out.push((ub, r.0, self.uid1(t)));
            }
            for &(r, h) in pair.kg1.in_edges(a) {
                out.push((self.uid1(h), r.0, ub));
            }
            for &(r, t) in pair.kg2.out_edges(b) {
                out.push((ua, r1 + r.0, self.uid2(t)));
            }
            for &(r, h) in pair.kg2.in_edges(b) {
                out.push((self.uid2(h), r1 + r.0, ua));
            }
        }
        out
    }

    #[inline]
    pub fn uid1(&self, e: EntityId) -> u32 {
        self.map1[e.idx()]
    }

    #[inline]
    pub fn uid2(&self, e: EntityId) -> u32 {
        self.map2[e.idx()]
    }

    /// Splits a unified embedding table back into per-KG flat buffers.
    pub fn extract(&self, table: &EmbeddingTable) -> (Vec<f32>, Vec<f32>) {
        let dim = table.dim();
        let mut e1 = Vec::with_capacity(self.map1.len() * dim);
        for &u in &self.map1 {
            e1.extend_from_slice(table.row(u as usize));
        }
        let mut e2 = Vec::with_capacity(self.map2.len() * dim);
        for &u in &self.map2 {
            e2.extend_from_slice(table.row(u as usize));
        }
        (e1, e2)
    }
}

/// Pulls the unified embeddings of aligned pairs together (the calibration
/// objective `‖e₁ − e₂‖²`, one SGD step per pair).
pub fn calibrate(table: &mut EmbeddingTable, pairs: &[(u32, u32)], lr: f32) {
    let dim = table.dim();
    for &(a, b) in pairs {
        if a == b {
            continue;
        }
        let (ra, rb) = table.rows_mut2(a as usize, b as usize);
        for i in 0..dim {
            let g = 2.0 * (ra[i] - rb[i]) * lr;
            ra[i] -= g;
            rb[i] += g;
        }
    }
}

/// Early stopping on validation Hits@1 (paper's termination condition).
#[derive(Clone, Debug)]
pub struct EarlyStopper {
    best: f64,
    bad_checks: usize,
    patience: usize,
}

impl EarlyStopper {
    pub fn new(patience: usize) -> Self {
        Self {
            best: f64::NEG_INFINITY,
            bad_checks: 0,
            patience,
        }
    }

    /// Feeds a new validation score; returns `true` when training should stop.
    pub fn should_stop(&mut self, score: f64) -> bool {
        if score > self.best {
            self.best = score;
            self.bad_checks = 0;
            false
        } else {
            self.bad_checks += 1;
            self.bad_checks > self.patience
        }
    }

    pub fn best(&self) -> f64 {
        self.best
    }
}

/// Validation Hits@1 via greedy matching among the validation pairs.
pub fn validation_hits1(out: &ApproachOutput, valid: &[AlignedPair], threads: usize) -> f64 {
    if valid.is_empty() {
        return 0.0;
    }
    evaluate_output(out, valid, threads).hits1
}

/// The concatenated literal text of an entity (attribute values joined), the
/// raw material for description/name encoders.
pub fn entity_literal_text(kg: &KnowledgeGraph, e: EntityId) -> String {
    let mut parts: Vec<&str> = kg
        .attrs_of(e)
        .iter()
        .map(|&(_, v)| kg.literal_value(v))
        .collect();
    parts.sort_unstable();
    parts.join(" ")
}

/// A heuristic "name" literal: the value with the most alphabetic
/// characters (names are wordy; numbers and dates are not).
pub fn entity_name_literal(kg: &KnowledgeGraph, e: EntityId) -> Option<&str> {
    kg.attrs_of(e)
        .iter()
        .map(|&(_, v)| kg.literal_value(v))
        .max_by_key(|s| s.chars().filter(|c| c.is_alphabetic()).count())
}

/// Literal feature vectors for every entity of a KG (unit rows; zero for
/// entities without literals).
pub fn literal_features(kg: &KnowledgeGraph, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let mut out = vec![0.0f32; kg.num_entities() * dim];
    for e in kg.entity_ids() {
        let attrs = kg.attrs_of(e);
        if attrs.is_empty() {
            continue;
        }
        let row = &mut out[e.idx() * dim..(e.idx() + 1) * dim];
        for &(_, v) in attrs {
            let lv = enc.encode(kg.literal_value(v));
            vecops::axpy(1.0, &lv, row);
        }
        vecops::normalize(row);
    }
    out
}

/// Weighted concatenation of a structural embedding with auxiliary feature
/// views — the inference-time combination JAPE, GCNAlign, IMUSE, KDCoE and
/// MultiKE share. Each `dim`-wide structural row is L2-normalized then
/// scaled by `w`; each `(features, feature_dim, weight)` view appends its
/// matching row scaled raw (literal features are already unit rows).
pub(crate) fn weighted_concat(
    structure: &[f32],
    dim: usize,
    w: f32,
    views: &[(&[f32], usize, f32)],
) -> Vec<f32> {
    let n = structure.len() / dim.max(1);
    let out_dim = dim + views.iter().map(|&(_, d, _)| d).sum::<usize>();
    let mut out = Vec::with_capacity(n * out_dim);
    for i in 0..n {
        let mut srow = structure[i * dim..(i + 1) * dim].to_vec();
        vecops::normalize(&mut srow);
        out.extend(srow.iter().map(|x| x * w));
        for &(f, fd, fw) in views {
            out.extend(f[i * fd..(i + 1) * fd].iter().map(|x| x * fw));
        }
    }
    out
}

/// Precision/recall/F1 of a set of proposed pairs against the full gold
/// alignment, for the Figure 7 augmentation curves. Both are given in KG
/// entity ids.
pub fn augmentation_quality(
    proposed: &[(EntityId, EntityId)],
    gold: &HashSet<(EntityId, EntityId)>,
) -> PrfScores {
    let pred: Vec<(u32, u32)> = proposed.iter().map(|&(a, b)| (a.0, b.0)).collect();
    let gold_raw: HashSet<(u32, u32)> = gold.iter().map(|&(a, b)| (a.0, b.0)).collect();
    precision_recall_f1(&pred, &gold_raw)
}

/// Reserved RNG stream tag for warm-start seeding: new entities are seeded
/// from `stream(seed ^ WARM_SEED_STREAM, key)` where `key` identifies the
/// entity, so the seeded bits depend only on `(run seed, entity)` — not on
/// how many other entities exist in the generation.
pub const WARM_SEED_STREAM: u64 = 0x5741_524d_5345_4544; // "WARMSEED"

/// Fills one new entity's row from its reserved warm-start stream: a
/// symmetric uniform draw L2-normalized, the same row distribution the
/// `Unit` initializer produces for cold models.
pub fn warm_seed_row(seed: u64, key: u64, row: &mut [f32]) {
    use openea_runtime::rng::Rng;
    let mut rng = SmallRng::stream(seed ^ WARM_SEED_STREAM, key);
    for x in row.iter_mut() {
        *x = rng.gen_range(-1.0f32..=1.0);
    }
    vecops::normalize(row);
}

/// Shared driver state for approaches whose epoch is one batched TransE
/// pass over a unified space (JAPE, IMUSE, IPTransE, AttrE, MultiKE): the
/// space, the model initialized from the driver RNG, the uniform negative
/// sampler and the per-epoch seed draws, in exactly the historical order.
pub(crate) struct UnifiedTransE {
    pub space: UnifiedSpace,
    pub model: openea_models::TransE,
    pub sampler: UniformSampler,
    pub opts: TrainOptions,
    pub rng: SmallRng,
}

impl UnifiedTransE {
    pub fn new(space: UnifiedSpace, cfg: &RunConfig, mut rng: SmallRng) -> Self {
        let model = openea_models::TransE::new(
            space.num_entities,
            space.num_relations.max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let sampler = UniformSampler {
            num_entities: space.num_entities.max(1) as u32,
        };
        let opts = cfg.train_options(space.triples.len());
        Self {
            space,
            model,
            sampler,
            opts,
            rng,
        }
    }

    /// Absorbs previous-generation parameters into the unified table:
    /// rows of entities the parent snapshot knew are copied from it (on
    /// seed-shared unified rows the KG2 copy wins, a fixed write order),
    /// new entities are seeded from the reserved warm stream keyed by
    /// unified id. Returns `false` — leaving the cold init untouched —
    /// when the snapshot dimension differs from the model's.
    pub fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        use openea_models::traits::RelationModel;
        let (rows1, rows2) = (warm.rows1(), warm.rows2());
        let mut prev = Vec::with_capacity(warm.emb1.len() + warm.emb2.len());
        prev.extend_from_slice(warm.emb1);
        prev.extend_from_slice(warm.emb2);
        let mut src: Vec<Option<usize>> = vec![None; self.space.num_entities];
        for (e, &u) in self.space.map1.iter().enumerate().take(rows1) {
            src[u as usize] = Some(e);
        }
        for (e, &u) in self.space.map2.iter().enumerate().take(rows2) {
            src[u as usize] = Some(rows1 + e);
        }
        let seed = ctx.seed;
        self.model
            .init_from(warm.dim, &prev, &|u| src[u], &mut |u, row| {
                warm_seed_row(seed, u as u64, row)
            })
    }

    /// One guarded batched epoch; a no-op under `use_relations == false`.
    pub fn train_epoch(&mut self, cfg: &RunConfig) -> EpochStats {
        if !cfg.use_relations {
            return EpochStats::default();
        }
        train_epoch_batched(
            &mut self.model,
            &self.space.triples,
            &self.sampler,
            &self.opts,
            self.rng.next_u64(),
        )
        .expect("valid train options")
    }
}

/// The interface of an entity-alignment approach.
///
/// Implementors provide [`Approach::try_run`]; the provided `run` /
/// `run_with` wrappers build a default [`RunContext`] and surface invalid
/// configurations as panics for callers that predate the fallible API.
pub trait Approach: Send + Sync {
    fn name(&self) -> &'static str;

    /// Table 9 column for this approach.
    fn requirements(&self) -> Requirements;

    /// Trains on `split.train` (+`split.valid` for early stopping) under
    /// the given run context and returns alignment-ready embeddings, or the
    /// configuration error that prevented the run from starting.
    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError>;

    /// Infallible convenience wrapper over [`Approach::try_run`] with a
    /// default context (no budget, no telemetry sink).
    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        self.run_with(pair, split, cfg, &RunContext::new(cfg))
    }

    /// Like [`Approach::run`] but under a caller-provided context carrying
    /// a wall/epoch budget and telemetry sink.
    fn run_with(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> ApproachOutput {
        self.try_run(pair, split, cfg, ctx)
            .unwrap_or_else(|e| panic!("{}: invalid run config: {e}", self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;

    fn tiny_pair() -> KgPair {
        let mut b1 = KgBuilder::new("g1");
        b1.add_rel_triple("a1", "r", "b1");
        b1.add_rel_triple("b1", "r", "c1");
        b1.add_attr_triple("a1", "name", "alpha beta");
        let mut b2 = KgBuilder::new("g2");
        b2.add_rel_triple("a2", "s", "b2");
        b2.add_rel_triple("b2", "s", "c2");
        b2.add_attr_triple("a2", "label", "alpha beta");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let al = ["a", "b", "c"]
            .iter()
            .map(|n| {
                (
                    kg1.entity_by_name(&format!("{n}1")).unwrap(),
                    kg2.entity_by_name(&format!("{n}2")).unwrap(),
                )
            })
            .collect();
        KgPair::new(kg1, kg2, al)
    }

    #[test]
    fn sharing_merges_seed_ids() {
        let p = tiny_pair();
        let seeds = vec![p.alignment[0]];
        let s = UnifiedSpace::build(&p, &seeds, Combination::Sharing);
        assert_eq!(s.num_entities, 3 + 3 - 1);
        assert_eq!(s.uid1(seeds[0].0), s.uid2(seeds[0].1));
        // Non-seed entities stay distinct.
        assert_ne!(s.uid1(p.alignment[1].0), s.uid2(p.alignment[1].1));
        assert_eq!(s.num_relations, 2);
    }

    #[test]
    fn swapping_adds_extra_triples() {
        let p = tiny_pair();
        let seeds = vec![p.alignment[0], p.alignment[1]];
        let plain = UnifiedSpace::build(&p, &[], Combination::Calibration);
        let swapped = UnifiedSpace::build(&p, &seeds, Combination::Swapping);
        assert!(swapped.triples.len() > plain.triples.len());
        // Every swap references valid unified ids.
        for &(h, r, t) in &swapped.triples {
            assert!((h as usize) < swapped.num_entities);
            assert!((t as usize) < swapped.num_entities);
            assert!((r as usize) < swapped.num_relations);
        }
    }

    #[test]
    fn extract_roundtrips_embeddings() {
        let p = tiny_pair();
        let s = UnifiedSpace::build(&p, &[], Combination::Calibration);
        let mut rng = openea_runtime::rng::StepRng::new(1, 1);
        let _ = &mut rng;
        let mut table = EmbeddingTable::zeros(s.num_entities, 4);
        for i in 0..s.num_entities {
            table.row_mut(i).fill(i as f32);
        }
        let (e1, e2) = s.extract(&table);
        assert_eq!(e1.len(), 3 * 4);
        assert_eq!(e2.len(), 3 * 4);
        let a1 = p.kg1.entity_by_name("a1").unwrap();
        assert_eq!(e1[a1.idx() * 4], s.uid1(a1) as f32);
    }

    #[test]
    fn calibrate_pulls_rows_together() {
        let mut table = EmbeddingTable::zeros(2, 2);
        table.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        table.row_mut(1).copy_from_slice(&[0.0, 1.0]);
        let d0 = vecops::euclidean(table.row(0), table.row(1));
        calibrate(&mut table, &[(0, 1)], 0.1);
        let d1 = vecops::euclidean(table.row(0), table.row(1));
        assert!(d1 < d0);
    }

    #[test]
    fn early_stopper_patience() {
        let mut es = EarlyStopper::new(1);
        assert!(!es.should_stop(0.5));
        assert!(!es.should_stop(0.6)); // improvement
        assert!(!es.should_stop(0.55)); // first bad check
        assert!(es.should_stop(0.5)); // second bad check -> stop
        assert_eq!(es.best(), 0.6);
    }

    #[test]
    fn name_literal_prefers_wordy_values() {
        let mut b = KgBuilder::new("k");
        b.add_attr_triple("e", "pop", "12345");
        b.add_attr_triple("e", "name", "long descriptive name");
        let kg = b.build();
        let e = kg.entity_by_name("e").unwrap();
        assert_eq!(entity_name_literal(&kg, e), Some("long descriptive name"));
    }

    #[test]
    fn literal_features_are_unit_or_zero() {
        let p = tiny_pair();
        let enc = LiteralEncoder::new(WordVectors::hash_only(8));
        let f = literal_features(&p.kg1, &enc);
        let a1 = p.kg1.entity_by_name("a1").unwrap();
        let row = &f[a1.idx() * 8..(a1.idx() + 1) * 8];
        assert!((vecops::norm2(row) - 1.0).abs() < 1e-4);
        let b1 = p.kg1.entity_by_name("b1").unwrap(); // no attrs
        let row = &f[b1.idx() * 8..(b1.idx() + 1) * 8];
        assert!(row.iter().all(|&x| x == 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use openea_core::KgBuilder;
    use openea_runtime::testkit::prelude::*;

    /// Builds a random pair where entity i of KG1 aligns with entity i of KG2.
    fn random_pair(edges1: &[(u8, u8, u8)], edges2: &[(u8, u8, u8)], n: u8) -> KgPair {
        let mut b1 = KgBuilder::new("g1");
        let mut b2 = KgBuilder::new("g2");
        for i in 0..n {
            b1.add_entity(&format!("a{i}"));
            b2.add_entity(&format!("b{i}"));
        }
        for &(h, r, t) in edges1 {
            b1.add_rel_triple(
                &format!("a{}", h % n),
                &format!("r{}", r % 4),
                &format!("a{}", t % n),
            );
        }
        for &(h, r, t) in edges2 {
            b2.add_rel_triple(
                &format!("b{}", h % n),
                &format!("s{}", r % 4),
                &format!("b{}", t % n),
            );
        }
        let kg1 = b1.build();
        let kg2 = b2.build();
        let alignment = (0..n)
            .map(|i| {
                (
                    kg1.entity_by_name(&format!("a{i}")).unwrap(),
                    kg2.entity_by_name(&format!("b{i}")).unwrap(),
                )
            })
            .collect();
        KgPair::new(kg1, kg2, alignment)
    }

    props! {
        #![cases = 32]

        /// The unified space is well-formed under every combination mode:
        /// ids in range, seed pairs share ids iff sharing, triples valid.
        #[test]
        fn unified_space_invariants(
            edges1 in vec_of((0u8..6, 0u8..4, 0u8..6), 1..24),
            edges2 in vec_of((0u8..6, 0u8..4, 0u8..6), 1..24),
            num_seeds in 0usize..4,
        ) {
            let pair = random_pair(&edges1, &edges2, 6);
            let seeds: Vec<AlignedPair> = pair.alignment.iter().copied().take(num_seeds).collect();
            for mode in [Combination::Calibration, Combination::Sharing, Combination::Swapping] {
                let space = UnifiedSpace::build(&pair, &seeds, mode);
                // Triples reference valid ids.
                for &(h, r, t) in &space.triples {
                    prop_assert!((h as usize) < space.num_entities);
                    prop_assert!((t as usize) < space.num_entities);
                    prop_assert!((r as usize) < space.num_relations);
                }
                // Entity maps stay in range.
                for e in pair.kg1.entity_ids() {
                    prop_assert!((space.uid1(e) as usize) < space.num_entities);
                }
                for e in pair.kg2.entity_ids() {
                    prop_assert!((space.uid2(e) as usize) < space.num_entities);
                }
                // Sharing merges exactly the seeds.
                for &(a, b) in &seeds {
                    if mode == Combination::Sharing {
                        prop_assert_eq!(space.uid1(a), space.uid2(b));
                    } else {
                        prop_assert_ne!(space.uid1(a), space.uid2(b));
                    }
                }
                // Entity count bookkeeping.
                let expected = match mode {
                    Combination::Sharing => {
                        pair.kg1.num_entities() + pair.kg2.num_entities() - seeds.len()
                    }
                    _ => pair.kg1.num_entities() + pair.kg2.num_entities(),
                };
                prop_assert_eq!(space.num_entities, expected);
            }
        }

        /// extract() inverts the maps: each KG row equals its unified row.
        #[test]
        fn extract_is_consistent_with_uids(
            edges1 in vec_of((0u8..5, 0u8..3, 0u8..5), 1..12),
            num_seeds in 0usize..3,
        ) {
            let pair = random_pair(&edges1, &edges1, 5);
            let seeds: Vec<AlignedPair> = pair.alignment.iter().copied().take(num_seeds).collect();
            let space = UnifiedSpace::build(&pair, &seeds, Combination::Sharing);
            let mut table = EmbeddingTable::zeros(space.num_entities, 3);
            for i in 0..space.num_entities {
                table.row_mut(i).fill(i as f32);
            }
            let (e1, e2) = space.extract(&table);
            for e in pair.kg1.entity_ids() {
                prop_assert_eq!(e1[e.idx() * 3], space.uid1(e) as f32);
            }
            for e in pair.kg2.entity_ids() {
                prop_assert_eq!(e2[e.idx() * 3], space.uid2(e) as f32);
            }
        }
    }
}

impl ApproachOutput {
    /// Writes the embeddings as TSV (`entity-uri \t v0 \t v1 …`), one file
    /// section per KG separated by a blank line — a portable analogue of
    /// OpenEA's saved embedding matrices.
    pub fn write_tsv(
        &self,
        path: impl AsRef<std::path::Path>,
        pair: &KgPair,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        for (kg, emb) in [(&pair.kg1, &self.emb1), (&pair.kg2, &self.emb2)] {
            for e in kg.entity_ids() {
                write!(w, "{}", kg.entity_name(e))?;
                for v in &emb[e.idx() * self.dim..(e.idx() + 1) * self.dim] {
                    write!(w, "\t{v}")?;
                }
                writeln!(w)?;
            }
            writeln!(w)?;
        }
        w.flush()
    }

    /// Reads embeddings written by [`ApproachOutput::write_tsv`] back,
    /// resolving rows against `pair`'s entity names.
    pub fn read_tsv(
        path: impl AsRef<std::path::Path>,
        pair: &KgPair,
        metric: Metric,
    ) -> std::io::Result<ApproachOutput> {
        let text = std::fs::read_to_string(path)?;
        let mut sections = text.split("\n\n");
        let parse = |section: &str, kg: &KnowledgeGraph| -> std::io::Result<(usize, Vec<f32>)> {
            let mut dim = 0usize;
            let mut emb: Vec<f32> = Vec::new();
            let mut rows = 0usize;
            let mut buf: Vec<(EntityId, Vec<f32>)> = Vec::new();
            for line in section.lines() {
                if line.is_empty() {
                    continue;
                }
                let mut cols = line.split('\t');
                let name = cols.next().unwrap_or_default();
                let e = kg.entity_by_name(name).ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unknown entity {name}"),
                    )
                })?;
                let v: Vec<f32> = cols
                    .map(|c| {
                        c.parse::<f32>()
                            .map_err(|x| std::io::Error::new(std::io::ErrorKind::InvalidData, x))
                    })
                    .collect::<Result<_, _>>()?;
                if dim == 0 {
                    dim = v.len();
                } else if dim != v.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "ragged embedding rows",
                    ));
                }
                buf.push((e, v));
                rows += 1;
            }
            if rows != kg.num_entities() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected {} rows, found {rows}", kg.num_entities()),
                ));
            }
            emb.resize(kg.num_entities() * dim, 0.0);
            for (e, v) in buf {
                emb[e.idx() * dim..(e.idx() + 1) * dim].copy_from_slice(&v);
            }
            Ok((dim, emb))
        };
        let s1 = sections.next().unwrap_or_default();
        let s2 = sections.next().unwrap_or_default();
        let (d1, emb1) = parse(s1, &pair.kg1)?;
        let (d2, emb2) = parse(s2, &pair.kg2)?;
        if d1 != d2 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "dimension mismatch between KGs",
            ));
        }
        Ok(ApproachOutput::new(d1, metric, emb1, emb2))
    }
}

#[cfg(test)]
mod tsv_tests {
    use super::*;
    use openea_core::KgBuilder;

    #[test]
    fn embeddings_roundtrip_through_tsv() {
        let mut b1 = KgBuilder::new("g1");
        b1.add_rel_triple("a1", "r", "b1");
        let mut b2 = KgBuilder::new("g2");
        b2.add_rel_triple("a2", "s", "b2");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let al = vec![(
            kg1.entity_by_name("a1").unwrap(),
            kg2.entity_by_name("a2").unwrap(),
        )];
        let pair = KgPair::new(kg1, kg2, al);
        let out = ApproachOutput::new(
            3,
            Metric::Cosine,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![0.5, -1.5, 2.5, 7.0, 8.0, 9.0],
        );
        let path = std::env::temp_dir().join(format!("openea_emb_{}.tsv", std::process::id()));
        out.write_tsv(&path, &pair).unwrap();
        let back = ApproachOutput::read_tsv(&path, &pair, Metric::Cosine).unwrap();
        assert_eq!(back.dim, 3);
        assert_eq!(back.emb1, out.emb1);
        assert_eq!(back.emb2, out.emb2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn read_tsv_rejects_wrong_entities() {
        let mut b1 = KgBuilder::new("g1");
        b1.add_entity("a1");
        let mut b2 = KgBuilder::new("g2");
        b2.add_entity("a2");
        let pair = KgPair::new(b1.build(), b2.build(), vec![]);
        let path = std::env::temp_dir().join(format!("openea_embbad_{}.tsv", std::process::id()));
        std::fs::write(&path, "nope\t1\t2\n\nmore\t1\t2\n\n").unwrap();
        assert!(ApproachOutput::read_tsv(&path, &pair, Metric::Cosine).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
