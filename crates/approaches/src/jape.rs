//! JAPE \[72\]: joint attribute-preserving embedding. TransE in a unified
//! space (parameter sharing) plus attribute-correlation embedding (AC2Vec):
//! attributes co-occurring on entities are embedded close, and entities get
//! an attribute feature that refines the structural similarity. Cosine
//! metric, supervised.
//!
//! Attribute spaces of the two KGs connect only through attributes with
//! identical names — which rarely happens across heterogeneous schemata, so
//! the attribute signal is weak, exactly the behaviour Figure 6 reports.

use crate::common::{
    weighted_concat, Approach, ApproachOutput, Combination, EpochStats, Req, Requirements,
    RunConfig, TrainError, UnifiedSpace, UnifiedTransE,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::Metric;
use openea_core::{AttributeId, FoldSplit, KgPair, KnowledgeGraph};
use openea_models::{AttrCorrelationModel, TransE};
use std::collections::HashMap;

/// Unified attribute ids across two KGs: attributes with identical names
/// share an id. Returns `(maps, count)`.
pub fn unify_attributes(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> (Vec<u32>, Vec<u32>, usize) {
    let mut by_name: HashMap<&str, u32> = HashMap::new();
    let mut next = 0u32;
    let mut map1 = Vec::with_capacity(kg1.num_attributes());
    for a in 0..kg1.num_attributes() {
        let name = kg1.attribute_name(AttributeId::from_idx(a));
        let id = *by_name.entry(name).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        map1.push(id);
    }
    let mut map2 = Vec::with_capacity(kg2.num_attributes());
    for a in 0..kg2.num_attributes() {
        let name = kg2.attribute_name(AttributeId::from_idx(a));
        let id = *by_name.entry(name).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        map2.push(id);
    }
    (map1, map2, next as usize)
}

/// Per-entity unified attribute id lists.
pub fn entity_attr_sets(kg: &KnowledgeGraph, map: &[u32]) -> Vec<Vec<u32>> {
    kg.entity_ids()
        .map(|e| {
            let mut v: Vec<u32> = kg.attrs_of(e).iter().map(|&(a, _)| map[a.idx()]).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

/// Per-KG attribute-correlation feature vectors (row-major, `dim` wide).
type AttrFeatures = (Vec<f32>, Vec<f32>);

/// JAPE.
pub struct Jape {
    /// Weight of the structural view in the combined embedding.
    pub structure_weight: f32,
}

impl Default for Jape {
    fn default() -> Self {
        Self {
            structure_weight: 0.85,
        }
    }
}

impl Approach for Jape {
    fn name(&self) -> &'static str {
        "JAPE"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Mandatory, Optional, Mandatory, NotApplicable, NotApplicable)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);
        let mut base = UnifiedTransE::new(space, cfg, ctx.driver_rng());

        // Attribute-correlation view (drawing from the driver RNG after
        // model init, as the pre-engine driver did).
        let attr_features = if cfg.use_attributes {
            let (map1, map2, num_attrs) = unify_attributes(&pair.kg1, &pair.kg2);
            let sets1 = entity_attr_sets(&pair.kg1, &map1);
            let sets2 = entity_attr_sets(&pair.kg2, &map2);
            let mut all_sets = sets1.clone();
            all_sets.extend(sets2.iter().cloned());
            let mut ac = AttrCorrelationModel::new(num_attrs.max(2), cfg.dim, &mut base.rng);
            ac.train(&all_sets, 4, cfg.lr, &mut base.rng);
            let f1: Vec<f32> = sets1.iter().flat_map(|s| ac.entity_feature(s)).collect();
            let f2: Vec<f32> = sets2.iter().flat_map(|s| ac.entity_feature(s)).collect();
            Some((f1, f2))
        } else {
            None
        };

        let mut hooks = Hooks {
            approach: self,
            cfg,
            base,
            attr_features,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

struct Hooks<'a> {
    approach: &'a Jape,
    cfg: &'a RunConfig,
    base: UnifiedTransE,
    attr_features: Option<AttrFeatures>,
}

impl EpochHooks for Hooks<'_> {
    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        self.base.warm_start(warm, ctx)
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        self.base.train_epoch(self.cfg)
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.output(
            &self.base.space,
            &self.base.model,
            self.attr_features.as_ref(),
            self.cfg,
        )
    }
}

impl Jape {
    /// Combines the structural embedding with the attribute feature by
    /// weighted concatenation (cosine over the concat realizes the paper's
    /// weighted similarity combination).
    fn output(
        &self,
        space: &UnifiedSpace,
        model: &TransE,
        attr: Option<&AttrFeatures>,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let (s1, s2) = space.extract(&model.entities);
        match attr {
            None => ApproachOutput::new(cfg.dim, Metric::Cosine, s1, s2),
            Some((f1, f2)) => {
                let (ws, wa) = (self.structure_weight, 1.0 - self.structure_weight);
                ApproachOutput::new(
                    cfg.dim * 2,
                    Metric::Cosine,
                    weighted_concat(&s1, cfg.dim, ws, &[(f1, cfg.dim, wa)]),
                    weighted_concat(&s2, cfg.dim, ws, &[(f2, cfg.dim, wa)]),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;

    #[test]
    fn unify_attributes_merges_identical_names() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("e", "name", "x");
        b1.add_attr_triple("e", "pop", "1");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("f", "name", "y");
        b2.add_attr_triple("f", "area", "2");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let (m1, m2, n) = unify_attributes(&kg1, &kg2);
        assert_eq!(n, 3); // name shared; pop, area distinct
        let name1 = kg1.attribute_by_name("name").unwrap();
        let name2 = kg2.attribute_by_name("name").unwrap();
        assert_eq!(m1[name1.idx()], m2[name2.idx()]);
    }

    #[test]
    fn entity_attr_sets_dedup() {
        let mut b = KgBuilder::new("a");
        b.add_attr_triple("e", "name", "x");
        b.add_attr_triple("e", "name", "y");
        b.add_attr_triple("e", "pop", "1");
        let kg = b.build();
        let (map, _, _) = unify_attributes(&kg, &KgBuilder::new("b").build());
        let sets = entity_attr_sets(&kg, &map);
        assert_eq!(sets[0].len(), 2); // name deduped
    }

    #[test]
    fn requirements_mark_attributes_optional() {
        assert_eq!(Jape::default().requirements().attr_triples, Req::Optional);
    }
}
