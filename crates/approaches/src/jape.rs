//! JAPE \[72\]: joint attribute-preserving embedding. TransE in a unified
//! space (parameter sharing) plus attribute-correlation embedding (AC2Vec):
//! attributes co-occurring on entities are embedded close, and entities get
//! an attribute feature that refines the structural similarity. Cosine
//! metric, supervised.
//!
//! Attribute spaces of the two KGs connect only through attributes with
//! identical names — which rarely happens across heterogeneous schemata, so
//! the attribute signal is weak, exactly the behaviour Figure 6 reports.

use crate::common::{
    train_epoch_batched, validation_hits1, Approach, ApproachOutput, Combination, EarlyStopper,
    EpochStats, Req, Requirements, RunConfig, TraceRecorder, TrainTrace, UnifiedSpace,
};
use openea_align::Metric;
use openea_core::{AttributeId, FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::UniformSampler;
use openea_math::vecops;
use openea_models::{AttrCorrelationModel, TransE};
use openea_runtime::rng::SmallRng;
use openea_runtime::rng::{RngCore, SeedableRng};
use std::collections::HashMap;

/// Unified attribute ids across two KGs: attributes with identical names
/// share an id. Returns `(maps, count)`.
pub fn unify_attributes(kg1: &KnowledgeGraph, kg2: &KnowledgeGraph) -> (Vec<u32>, Vec<u32>, usize) {
    let mut by_name: HashMap<&str, u32> = HashMap::new();
    let mut next = 0u32;
    let mut map1 = Vec::with_capacity(kg1.num_attributes());
    for a in 0..kg1.num_attributes() {
        let name = kg1.attribute_name(AttributeId::from_idx(a));
        let id = *by_name.entry(name).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        map1.push(id);
    }
    let mut map2 = Vec::with_capacity(kg2.num_attributes());
    for a in 0..kg2.num_attributes() {
        let name = kg2.attribute_name(AttributeId::from_idx(a));
        let id = *by_name.entry(name).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        });
        map2.push(id);
    }
    (map1, map2, next as usize)
}

/// Per-entity unified attribute id lists.
pub fn entity_attr_sets(kg: &KnowledgeGraph, map: &[u32]) -> Vec<Vec<u32>> {
    kg.entity_ids()
        .map(|e| {
            let mut v: Vec<u32> = kg.attrs_of(e).iter().map(|&(a, _)| map[a.idx()]).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect()
}

/// Per-KG attribute-correlation feature vectors.
type AttrFeatures = (Vec<Vec<f32>>, Vec<Vec<f32>>);

/// JAPE.
pub struct Jape {
    /// Weight of the structural view in the combined embedding.
    pub structure_weight: f32,
}

impl Default for Jape {
    fn default() -> Self {
        Self {
            structure_weight: 0.85,
        }
    }
}

impl Approach for Jape {
    fn name(&self) -> &'static str {
        "JAPE"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            rel_triples: Req::Mandatory,
            attr_triples: Req::Optional,
            pre_aligned_entities: Req::Mandatory,
            pre_aligned_properties: Req::NotApplicable,
            word_embeddings: Req::NotApplicable,
        }
    }

    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);
        let mut model = TransE::new(
            space.num_entities,
            space.num_relations.max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let sampler = UniformSampler {
            num_entities: space.num_entities.max(1) as u32,
        };

        // Attribute-correlation view.
        let attr_features = if cfg.use_attributes {
            let (map1, map2, num_attrs) = unify_attributes(&pair.kg1, &pair.kg2);
            let sets1 = entity_attr_sets(&pair.kg1, &map1);
            let sets2 = entity_attr_sets(&pair.kg2, &map2);
            let mut all_sets = sets1.clone();
            all_sets.extend(sets2.iter().cloned());
            let mut ac = AttrCorrelationModel::new(num_attrs.max(2), cfg.dim, &mut rng);
            ac.train(&all_sets, 4, cfg.lr, &mut rng);
            let f1: Vec<Vec<f32>> = sets1.iter().map(|s| ac.entity_feature(s)).collect();
            let f2: Vec<Vec<f32>> = sets2.iter().map(|s| ac.entity_feature(s)).collect();
            Some((f1, f2))
        } else {
            None
        };

        let opts = cfg.train_options(space.triples.len());
        let mut rec = TraceRecorder::new(self.name());
        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut best: Option<ApproachOutput> = None;
        for epoch in 0..cfg.max_epochs {
            rec.begin_epoch();
            let stats = if cfg.use_relations {
                train_epoch_batched(&mut model, &space.triples, &sampler, &opts, rng.next_u64())
                    .expect("valid train options")
            } else {
                EpochStats::default()
            };
            rec.end_epoch(epoch, stats);
            if (epoch + 1) % cfg.check_every == 0 {
                let out = self.output(&space, &model, attr_features.as_ref(), cfg);
                let score = validation_hits1(&out, &split.valid, cfg.threads);
                rec.record_validation(score);
                let improved = score > stopper.best();
                if improved || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    break;
                }
            }
        }
        let mut out =
            best.unwrap_or_else(|| self.output(&space, &model, attr_features.as_ref(), cfg));
        out.trace = rec.finish();
        out
    }
}

impl Jape {
    /// Combines the structural embedding with the attribute feature by
    /// weighted concatenation (cosine over the concat realizes the paper's
    /// weighted similarity combination).
    fn output(
        &self,
        space: &UnifiedSpace,
        model: &TransE,
        attr: Option<&AttrFeatures>,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let (s1, s2) = space.extract(&model.entities);
        match attr {
            None => ApproachOutput {
                dim: cfg.dim,
                metric: Metric::Cosine,
                emb1: s1,
                emb2: s2,
                augmentation: Vec::new(),
                trace: TrainTrace::default(),
            },
            Some((f1, f2)) => {
                let ws = self.structure_weight;
                let wa = 1.0 - ws;
                let dim = cfg.dim * 2;
                let combine = |s: &[f32], f: &[Vec<f32>]| {
                    let mut out = Vec::with_capacity(f.len() * dim);
                    for (i, feat) in f.iter().enumerate() {
                        let mut srow = s[i * cfg.dim..(i + 1) * cfg.dim].to_vec();
                        vecops::normalize(&mut srow);
                        out.extend(srow.iter().map(|x| x * ws));
                        out.extend(feat.iter().map(|x| x * wa));
                    }
                    out
                };
                ApproachOutput {
                    dim,
                    metric: Metric::Cosine,
                    emb1: combine(&s1, f1),
                    emb2: combine(&s2, f2),
                    augmentation: Vec::new(),
                    trace: TrainTrace::default(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;

    #[test]
    fn unify_attributes_merges_identical_names() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("e", "name", "x");
        b1.add_attr_triple("e", "pop", "1");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("f", "name", "y");
        b2.add_attr_triple("f", "area", "2");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let (m1, m2, n) = unify_attributes(&kg1, &kg2);
        assert_eq!(n, 3); // name shared; pop, area distinct
        let name1 = kg1.attribute_by_name("name").unwrap();
        let name2 = kg2.attribute_by_name("name").unwrap();
        assert_eq!(m1[name1.idx()], m2[name2.idx()]);
    }

    #[test]
    fn entity_attr_sets_dedup() {
        let mut b = KgBuilder::new("a");
        b.add_attr_triple("e", "name", "x");
        b.add_attr_triple("e", "name", "y");
        b.add_attr_triple("e", "pop", "1");
        let kg = b.build();
        let (map, _, _) = unify_attributes(&kg, &KgBuilder::new("b").build());
        let sets = entity_attr_sets(&kg, &map);
        assert_eq!(sets[0].len(), 2); // name deduped
    }

    #[test]
    fn requirements_mark_attributes_optional() {
        assert_eq!(Jape::default().requirements().attr_triples, Req::Optional);
    }
}
