//! KDCoE \[9\]: co-training of two orthogonal views — relation-triple
//! embeddings (an MTransE-style transformation) and textual-description
//! embeddings (a literal encoder over pre-trained cross-lingual word
//! vectors). Each co-training iteration, each view proposes its most
//! confident new pairs to augment the other's training seed.
//!
//! Entities with thin descriptions cannot be proposed by the description
//! view, which limits how much co-training helps — the behaviour Figure 7
//! reports for KDCoE.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    augmentation_quality, entity_literal_text, train_epoch_batched, weighted_concat, Approach,
    ApproachOutput, EpochStats, Requirements, RunConfig, TrainError, TrainOptions,
};
use crate::engine::{run_driver, EpochHooks, RunContext};
use crate::transformation::{kg_triples, mapped_output, seed_step};
use openea_align::{Metric, PrfScores};
use openea_core::{AlignedPair, EntityId, FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::UniformSampler;
use openea_math::Matrix;
use openea_models::literal::LiteralEncoder;
use openea_models::TransE;
use openea_runtime::rng::{Rng, RngCore, SmallRng};
use std::collections::HashSet;

/// Description vectors for every entity (unit rows; zero when the entity has
/// no literals, i.e. "lacks a textual description").
pub fn description_vectors(kg: &KnowledgeGraph, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let mut out = vec![0.0f32; kg.num_entities() * dim];
    for e in kg.entity_ids() {
        let text = entity_literal_text(kg, e);
        if text.is_empty() {
            continue;
        }
        let v = enc.encode(&text);
        out[e.idx() * dim..(e.idx() + 1) * dim].copy_from_slice(&v);
    }
    out
}

/// KDCoE.
pub struct KdCoe {
    /// Epochs between co-training iterations.
    pub co_every: usize,
    /// Confidence threshold of the description view.
    pub desc_threshold: f32,
    /// Confidence threshold of the relation view.
    pub rel_threshold: f32,
    /// Weight of the description view in the final embedding.
    pub desc_weight: f32,
}

impl Default for KdCoe {
    fn default() -> Self {
        Self {
            co_every: 15,
            desc_threshold: 0.9,
            rel_threshold: 0.85,
            desc_weight: 0.5,
        }
    }
}

impl Approach for KdCoe {
    fn name(&self) -> &'static str {
        "KDCoE"
    }

    fn requirements(&self) -> Requirements {
        Requirements::LITERAL_AUGMENTED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let mut rng = ctx.driver_rng();
        let m1 = TransE::new(
            pair.kg1.num_entities(),
            pair.kg1.num_relations().max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let m2 = TransE::new(
            pair.kg2.num_entities(),
            pair.kg2.num_relations().max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let t1 = kg_triples(&pair.kg1);
        let t2 = kg_triples(&pair.kg2);
        let mut map = Matrix::identity(cfg.dim);
        for v in map.data_mut() {
            *v += rng.gen_range(-0.02f32..0.02);
        }

        // Description view (fixed encodings — the co-trained "other" model).
        let enc = cfg.literal_encoder();
        let desc = cfg.use_attributes.then(|| {
            (
                description_vectors(&pair.kg1, &enc),
                description_vectors(&pair.kg2, &enc),
            )
        });

        let seeds = split.train.clone();
        let gold: HashSet<(EntityId, EntityId)> = pair
            .alignment
            .iter()
            .copied()
            .filter(|p| !split.train.contains(p))
            .collect();

        let opts1 = cfg.train_options(t1.len());
        let opts2 = cfg.train_options(t2.len());
        let mut hooks = Hooks {
            approach: self,
            pair,
            cfg,
            m1,
            m2,
            map,
            t1,
            t2,
            s1: UniformSampler {
                num_entities: pair.kg1.num_entities().max(1) as u32,
            },
            s2: UniformSampler {
                num_entities: pair.kg2.num_entities().max(1) as u32,
            },
            enc,
            desc,
            taken1: seeds.iter().map(|&(a, _)| a).collect(),
            taken2: seeds.iter().map(|&(_, b)| b).collect(),
            seeds,
            gold,
            proposed_all: Vec::new(),
            augmentation: Vec::new(),
            opts1,
            opts2,
            rng,
        };
        let mut out = run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)?;
        out.augmentation = hooks.augmentation;
        Ok(out)
    }
}

/// Engine hooks: per-KG TransE epochs plus the joint transformation step,
/// then (every `co_every` epochs) a co-training round where the description
/// and relation views each propose confident new seeds for the other.
struct Hooks<'a> {
    approach: &'a KdCoe,
    pair: &'a KgPair,
    cfg: &'a RunConfig,
    m1: TransE,
    m2: TransE,
    map: Matrix,
    t1: Vec<(u32, u32, u32)>,
    t2: Vec<(u32, u32, u32)>,
    s1: UniformSampler,
    s2: UniformSampler,
    enc: LiteralEncoder,
    desc: Option<(Vec<f32>, Vec<f32>)>,
    taken1: HashSet<EntityId>,
    taken2: HashSet<EntityId>,
    seeds: Vec<AlignedPair>,
    gold: HashSet<(EntityId, EntityId)>,
    proposed_all: Vec<(EntityId, EntityId)>,
    augmentation: Vec<PrfScores>,
    opts1: TrainOptions,
    opts2: TrainOptions,
    rng: SmallRng,
}

impl EpochHooks for Hooks<'_> {
    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        if !self.cfg.use_relations {
            return EpochStats::default();
        }
        let a = train_epoch_batched(
            &mut self.m1,
            &self.t1,
            &self.s1,
            &self.opts1,
            self.rng.next_u64(),
        )
        .expect("valid train options");
        let b = train_epoch_batched(
            &mut self.m2,
            &self.t2,
            &self.s2,
            &self.opts2,
            self.rng.next_u64(),
        )
        .expect("valid train options");
        EpochStats::merged(&[a, b])
    }

    fn after_epoch(&mut self, epoch: usize, _ctx: &RunContext<'_>) {
        seed_step(
            &mut self.m1,
            &mut self.m2,
            &mut self.map,
            &self.seeds,
            self.cfg,
            true,
        );

        if (epoch + 1).is_multiple_of(self.approach.co_every) {
            // Description view proposes (only entities with descriptions).
            let mut new_pairs = Vec::new();
            if let Some((d1, d2)) = &self.desc {
                let enc_dim = self.enc.dim();
                let desc_out = ApproachOutput::new(enc_dim, Metric::Cosine, d1.clone(), d2.clone());
                let with_desc = |n: usize, taken: &HashSet<EntityId>, d: &[f32]| {
                    unaligned_entities(n, taken)
                        .into_iter()
                        .filter(|e| {
                            d[e.idx() * enc_dim..(e.idx() + 1) * enc_dim]
                                .iter()
                                .any(|&x| x != 0.0)
                        })
                        .collect::<Vec<EntityId>>()
                };
                let cand1 = with_desc(self.pair.kg1.num_entities(), &self.taken1, d1);
                let cand2 = with_desc(self.pair.kg2.num_entities(), &self.taken2, d2);
                new_pairs.extend(propose_alignment(
                    &desc_out,
                    &cand1,
                    &cand2,
                    self.approach.desc_threshold,
                    true,
                    self.cfg.threads,
                ));
            }
            // Relation view proposes.
            {
                let rel_out =
                    mapped_output(&self.m1, &self.m2, &self.map, self.cfg, Metric::Euclidean);
                let cand1 = unaligned_entities(self.pair.kg1.num_entities(), &self.taken1);
                let cand2 = unaligned_entities(self.pair.kg2.num_entities(), &self.taken2);
                new_pairs.extend(propose_alignment(
                    &rel_out,
                    &cand1,
                    &cand2,
                    self.approach.rel_threshold,
                    true,
                    self.cfg.threads,
                ));
            }
            for &(a, b) in &new_pairs {
                if !self.taken1.contains(&a) && !self.taken2.contains(&b) {
                    self.taken1.insert(a);
                    self.taken2.insert(b);
                    self.seeds.push((a, b));
                    self.proposed_all.push((a, b));
                }
            }
            self.augmentation
                .push(augmentation_quality(&self.proposed_all, &self.gold));
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.combined_output(
            &self.m1,
            &self.m2,
            &self.map,
            self.desc.as_ref(),
            &self.enc,
            self.cfg,
        )
    }
}

impl KdCoe {
    fn combined_output(
        &self,
        m1: &TransE,
        m2: &TransE,
        map: &Matrix,
        desc: Option<&(Vec<f32>, Vec<f32>)>,
        enc: &LiteralEncoder,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let rel = mapped_output(m1, m2, map, cfg, Metric::Euclidean);
        match desc {
            None => rel,
            Some((d1, d2)) => {
                let (enc_dim, w) = (enc.dim(), self.desc_weight);
                ApproachOutput::new(
                    cfg.dim + enc_dim,
                    Metric::Euclidean,
                    weighted_concat(&rel.emb1, cfg.dim, 1.0 - w, &[(d1, enc_dim, w)]),
                    weighted_concat(&rel.emb2, cfg.dim, 1.0 - w, &[(d2, enc_dim, w)]),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;
    use openea_math::vecops;
    use openea_models::literal::WordVectors;

    #[test]
    fn description_vectors_zero_without_literals() {
        let mut b = KgBuilder::new("a");
        b.add_rel_triple("x", "r", "y");
        b.add_attr_triple("x", "desc", "a city in the alps");
        let kg = b.build();
        let enc = LiteralEncoder::new(WordVectors::hash_only(16));
        let d = description_vectors(&kg, &enc);
        let x = kg.entity_by_name("x").unwrap();
        let y = kg.entity_by_name("y").unwrap();
        assert!(vecops::norm2(&d[x.idx() * 16..(x.idx() + 1) * 16]) > 0.9);
        assert!(d[y.idx() * 16..(y.idx() + 1) * 16]
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn matching_descriptions_align() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "desc", "the tallest mountain on earth");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "about", "the tallest mountain on earth");
        b2.add_attr_triple("w", "about", "a small danish village");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let enc = LiteralEncoder::new(WordVectors::hash_only(32));
        let d1 = description_vectors(&kg1, &enc);
        let d2 = description_vectors(&kg2, &enc);
        let x = kg1.entity_by_name("x").unwrap();
        let u = kg2.entity_by_name("u").unwrap();
        let w = kg2.entity_by_name("w").unwrap();
        let row = |d: &[f32], e: EntityId| d[e.idx() * 32..(e.idx() + 1) * 32].to_vec();
        assert!(
            vecops::cosine(&row(&d1, x), &row(&d2, u)) > vecops::cosine(&row(&d1, x), &row(&d2, w))
        );
    }
}
