//! KDCoE \[9\]: co-training of two orthogonal views — relation-triple
//! embeddings (an MTransE-style transformation) and textual-description
//! embeddings (a literal encoder over pre-trained cross-lingual word
//! vectors). Each co-training iteration, each view proposes its most
//! confident new pairs to augment the other's training seed.
//!
//! Entities with thin descriptions cannot be proposed by the description
//! view, which limits how much co-training helps — the behaviour Figure 7
//! reports for KDCoE.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    augmentation_quality, entity_literal_text, train_epoch_batched, validation_hits1, Approach,
    ApproachOutput, EarlyStopper, EpochStats, Req, Requirements, RunConfig, TraceRecorder,
    TrainTrace,
};
use crate::transformation::kg_triples;
use openea_align::Metric;
use openea_core::{EntityId, FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::UniformSampler;
use openea_math::{vecops, Matrix};
use openea_models::literal::LiteralEncoder;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::SmallRng;
use openea_runtime::rng::{Rng, RngCore, SeedableRng};
use std::collections::HashSet;

/// Description vectors for every entity (unit rows; zero when the entity has
/// no literals, i.e. "lacks a textual description").
pub fn description_vectors(kg: &KnowledgeGraph, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let mut out = vec![0.0f32; kg.num_entities() * dim];
    for e in kg.entity_ids() {
        let text = entity_literal_text(kg, e);
        if text.is_empty() {
            continue;
        }
        let v = enc.encode(&text);
        out[e.idx() * dim..(e.idx() + 1) * dim].copy_from_slice(&v);
    }
    out
}

/// KDCoE.
pub struct KdCoe {
    /// Epochs between co-training iterations.
    pub co_every: usize,
    /// Confidence threshold of the description view.
    pub desc_threshold: f32,
    /// Confidence threshold of the relation view.
    pub rel_threshold: f32,
    /// Weight of the description view in the final embedding.
    pub desc_weight: f32,
}

impl Default for KdCoe {
    fn default() -> Self {
        Self {
            co_every: 15,
            desc_threshold: 0.9,
            rel_threshold: 0.85,
            desc_weight: 0.5,
        }
    }
}

impl Approach for KdCoe {
    fn name(&self) -> &'static str {
        "KDCoE"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            rel_triples: Req::Optional,
            attr_triples: Req::Optional,
            pre_aligned_entities: Req::Mandatory,
            pre_aligned_properties: Req::Optional,
            word_embeddings: Req::CrossLingualOnly,
        }
    }

    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut m1 = TransE::new(
            pair.kg1.num_entities(),
            pair.kg1.num_relations().max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let mut m2 = TransE::new(
            pair.kg2.num_entities(),
            pair.kg2.num_relations().max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let t1 = kg_triples(&pair.kg1);
        let t2 = kg_triples(&pair.kg2);
        let s1 = UniformSampler {
            num_entities: pair.kg1.num_entities().max(1) as u32,
        };
        let s2 = UniformSampler {
            num_entities: pair.kg2.num_entities().max(1) as u32,
        };
        let mut map = Matrix::identity(cfg.dim);
        for v in map.data_mut() {
            *v += rng.gen_range(-0.02f32..0.02);
        }

        // Description view (fixed encodings — the co-trained "other" model).
        let enc = cfg.literal_encoder();
        let desc = cfg.use_attributes.then(|| {
            (
                description_vectors(&pair.kg1, &enc),
                description_vectors(&pair.kg2, &enc),
            )
        });

        let mut seeds = split.train.clone();
        let mut taken1: HashSet<EntityId> = seeds.iter().map(|&(a, _)| a).collect();
        let mut taken2: HashSet<EntityId> = seeds.iter().map(|&(_, b)| b).collect();
        let gold: HashSet<(EntityId, EntityId)> = pair
            .alignment
            .iter()
            .copied()
            .filter(|p| !split.train.contains(p))
            .collect();
        let mut proposed_all: Vec<(EntityId, EntityId)> = Vec::new();
        let mut augmentation = Vec::new();

        let opts1 = cfg.train_options(t1.len());
        let opts2 = cfg.train_options(t2.len());
        let mut rec = TraceRecorder::new(self.name());
        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut best: Option<ApproachOutput> = None;
        for epoch in 0..cfg.max_epochs {
            rec.begin_epoch();
            let stats = if cfg.use_relations {
                let a = train_epoch_batched(&mut m1, &t1, &s1, &opts1, rng.next_u64())
                    .expect("valid train options");
                let b = train_epoch_batched(&mut m2, &t2, &s2, &opts2, rng.next_u64())
                    .expect("valid train options");
                EpochStats::merged(&[a, b])
            } else {
                EpochStats::default()
            };
            seed_step(&mut m1, &mut m2, &mut map, &seeds, cfg);

            if (epoch + 1) % self.co_every == 0 {
                // Description view proposes (only entities with descriptions).
                let mut new_pairs = Vec::new();
                if let Some((d1, d2)) = &desc {
                    let enc_dim = enc.dim();
                    let desc_out = ApproachOutput {
                        dim: enc_dim,
                        metric: Metric::Cosine,
                        emb1: d1.clone(),
                        emb2: d2.clone(),
                        augmentation: Vec::new(),
                        trace: TrainTrace::default(),
                    };
                    let cand1: Vec<EntityId> = unaligned_entities(pair.kg1.num_entities(), &taken1)
                        .into_iter()
                        .filter(|e| {
                            d1[e.idx() * enc_dim..(e.idx() + 1) * enc_dim]
                                .iter()
                                .any(|&x| x != 0.0)
                        })
                        .collect();
                    let cand2: Vec<EntityId> = unaligned_entities(pair.kg2.num_entities(), &taken2)
                        .into_iter()
                        .filter(|e| {
                            d2[e.idx() * enc_dim..(e.idx() + 1) * enc_dim]
                                .iter()
                                .any(|&x| x != 0.0)
                        })
                        .collect();
                    new_pairs.extend(propose_alignment(
                        &desc_out,
                        &cand1,
                        &cand2,
                        self.desc_threshold,
                        true,
                        cfg.threads,
                    ));
                }
                // Relation view proposes.
                {
                    let rel_out = self.relation_output(&m1, &m2, &map, cfg);
                    let cand1 = unaligned_entities(pair.kg1.num_entities(), &taken1);
                    let cand2 = unaligned_entities(pair.kg2.num_entities(), &taken2);
                    new_pairs.extend(propose_alignment(
                        &rel_out,
                        &cand1,
                        &cand2,
                        self.rel_threshold,
                        true,
                        cfg.threads,
                    ));
                }
                for &(a, b) in &new_pairs {
                    if !taken1.contains(&a) && !taken2.contains(&b) {
                        taken1.insert(a);
                        taken2.insert(b);
                        seeds.push((a, b));
                        proposed_all.push((a, b));
                    }
                }
                augmentation.push(augmentation_quality(&proposed_all, &gold));
            }
            rec.end_epoch(epoch, stats);

            if (epoch + 1) % cfg.check_every == 0 {
                let out = self.combined_output(&m1, &m2, &map, desc.as_ref(), &enc, cfg);
                let score = validation_hits1(&out, &split.valid, cfg.threads);
                rec.record_validation(score);
                let improved = score > stopper.best();
                if improved || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    break;
                }
            }
        }
        let mut out =
            best.unwrap_or_else(|| self.combined_output(&m1, &m2, &map, desc.as_ref(), &enc, cfg));
        out.augmentation = augmentation;
        out.trace = rec.finish();
        out
    }
}

/// Joint SGD on `‖M·e₁ − e₂‖²` (same as the transformation harness, shared
/// here to avoid a factory indirection for the co-training loop).
fn seed_step(
    m1: &mut TransE,
    m2: &mut TransE,
    map: &mut Matrix,
    seeds: &[(EntityId, EntityId)],
    cfg: &RunConfig,
) {
    let dim = cfg.dim;
    let lr = cfg.lr;
    let mut me1 = vec![0.0f32; dim];
    let mut mtu = vec![0.0f32; dim];
    for &(a, b) in seeds {
        let e1: Vec<f32> = m1.entities().row(a.idx()).to_vec();
        map.matvec_into(&e1, &mut me1);
        let u: Vec<f32> = {
            let e2 = m2.entities().row(b.idx());
            me1.iter().zip(e2).map(|(x, y)| x - y).collect()
        };
        map.matvec_t_into(&u, &mut mtu);
        for i in 0..dim {
            for j in 0..dim {
                map[(i, j)] -= 2.0 * lr * u[i] * e1[j];
            }
        }
        m1.entities_mut().sgd_row(a.idx(), &mtu, 2.0 * lr);
        let neg: Vec<f32> = u.iter().map(|x| -x).collect();
        m2.entities_mut().sgd_row(b.idx(), &neg, 2.0 * lr);
    }
}

impl KdCoe {
    fn relation_output(
        &self,
        m1: &TransE,
        m2: &TransE,
        map: &Matrix,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let mut emb1 = Vec::with_capacity(m1.num_entities() * cfg.dim);
        let mut buf = vec![0.0f32; cfg.dim];
        for e in 0..m1.num_entities() {
            map.matvec_into(m1.entities().row(e), &mut buf);
            emb1.extend_from_slice(&buf);
        }
        ApproachOutput {
            dim: cfg.dim,
            metric: Metric::Euclidean,
            emb1,
            emb2: m2.entities().data().to_vec(),
            augmentation: Vec::new(),
            trace: TrainTrace::default(),
        }
    }

    fn combined_output(
        &self,
        m1: &TransE,
        m2: &TransE,
        map: &Matrix,
        desc: Option<&(Vec<f32>, Vec<f32>)>,
        enc: &LiteralEncoder,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let rel = self.relation_output(m1, m2, map, cfg);
        match desc {
            None => rel,
            Some((d1, d2)) => {
                let enc_dim = enc.dim();
                let w = self.desc_weight;
                let combine = |rel: &[f32], d: &[f32], n: usize| {
                    let mut out = Vec::with_capacity(n * (cfg.dim + enc_dim));
                    for i in 0..n {
                        let mut r = rel[i * cfg.dim..(i + 1) * cfg.dim].to_vec();
                        vecops::normalize(&mut r);
                        out.extend(r.iter().map(|x| x * (1.0 - w)));
                        out.extend(d[i * enc_dim..(i + 1) * enc_dim].iter().map(|x| x * w));
                    }
                    out
                };
                ApproachOutput {
                    dim: cfg.dim + enc_dim,
                    metric: Metric::Euclidean,
                    emb1: combine(&rel.emb1, d1, m1.num_entities()),
                    emb2: combine(&rel.emb2, d2, m2.num_entities()),
                    augmentation: Vec::new(),
                    trace: TrainTrace::default(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;
    use openea_models::literal::WordVectors;

    #[test]
    fn description_vectors_zero_without_literals() {
        let mut b = KgBuilder::new("a");
        b.add_rel_triple("x", "r", "y");
        b.add_attr_triple("x", "desc", "a city in the alps");
        let kg = b.build();
        let enc = LiteralEncoder::new(WordVectors::hash_only(16));
        let d = description_vectors(&kg, &enc);
        let x = kg.entity_by_name("x").unwrap();
        let y = kg.entity_by_name("y").unwrap();
        assert!(vecops::norm2(&d[x.idx() * 16..(x.idx() + 1) * 16]) > 0.9);
        assert!(d[y.idx() * 16..(y.idx() + 1) * 16]
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn matching_descriptions_align() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "desc", "the tallest mountain on earth");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "about", "the tallest mountain on earth");
        b2.add_attr_triple("w", "about", "a small danish village");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let enc = LiteralEncoder::new(WordVectors::hash_only(32));
        let d1 = description_vectors(&kg1, &enc);
        let d2 = description_vectors(&kg2, &enc);
        let x = kg1.entity_by_name("x").unwrap();
        let u = kg2.entity_by_name("u").unwrap();
        let w = kg2.entity_by_name("w").unwrap();
        let row = |d: &[f32], e: EntityId| d[e.idx() * 32..(e.idx() + 1) * 32].to_vec();
        assert!(
            vecops::cosine(&row(&d1, x), &row(&d2, u)) > vecops::cosine(&row(&d1, x), &row(&d2, w))
        );
    }
}
