//! AttrE \[77\]: attribute-embedding-driven alignment. Relation triples are
//! embedded with TransE; literal values are encoded by a *character-level*
//! compositional encoder shared by both KGs, and each entity is pulled
//! toward its literal profile. Because the character encoder is the same for
//! both KGs, the attribute triples unify the two embedding spaces — but only
//! when the KGs share a surface language (the paper notes the character
//! encoder "may fail in cross-lingual settings", which this reproduces).
//! Cosine metric, sharing combination.

use crate::common::{
    Approach, ApproachOutput, Combination, EpochStats, Req, Requirements, RunConfig, TrainError,
    UnifiedSpace, UnifiedTransE,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair, KnowledgeGraph};
use openea_math::vecops;
use openea_models::literal::char_ngram_vector;
use openea_models::{RelationModel, TransE};

/// The character-level literal profile of every entity: the normalized sum
/// of character-n-gram vectors of its attribute values.
pub fn char_profiles(kg: &KnowledgeGraph, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; kg.num_entities() * dim];
    for e in kg.entity_ids() {
        let row = &mut out[e.idx() * dim..(e.idx() + 1) * dim];
        for &(_, v) in kg.attrs_of(e) {
            let cv = char_ngram_vector(kg.literal_value(v), dim);
            vecops::axpy(1.0, &cv, row);
        }
        vecops::normalize(row);
    }
    out
}

/// AttrE.
pub struct AttrE {
    /// Strength of the pull toward the literal profile.
    pub attr_weight: f32,
}

impl Default for AttrE {
    fn default() -> Self {
        Self { attr_weight: 0.5 }
    }
}

impl Approach for AttrE {
    fn name(&self) -> &'static str {
        "AttrE"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Optional, Optional, Mandatory, Optional, NotApplicable)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);

        // Fixed character-level literal profiles (unified ids).
        let profiles: Option<Vec<(u32, Vec<f32>)>> = cfg.use_attributes.then(|| {
            let p1 = char_profiles(&pair.kg1, cfg.dim);
            let p2 = char_profiles(&pair.kg2, cfg.dim);
            let mut v = Vec::new();
            for e in pair.kg1.entity_ids() {
                let row = &p1[e.idx() * cfg.dim..(e.idx() + 1) * cfg.dim];
                if row.iter().any(|&x| x != 0.0) {
                    v.push((space.uid1(e), row.to_vec()));
                }
            }
            for e in pair.kg2.entity_ids() {
                let row = &p2[e.idx() * cfg.dim..(e.idx() + 1) * cfg.dim];
                if row.iter().any(|&x| x != 0.0) {
                    v.push((space.uid2(e), row.to_vec()));
                }
            }
            v
        });

        let mut hooks = Hooks {
            approach: self,
            cfg,
            base: UnifiedTransE::new(space, cfg, ctx.driver_rng()),
            profiles,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

struct Hooks<'a> {
    approach: &'a AttrE,
    cfg: &'a RunConfig,
    base: UnifiedTransE,
    profiles: Option<Vec<(u32, Vec<f32>)>>,
}

impl EpochHooks for Hooks<'_> {
    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        self.base.warm_start(warm, ctx)
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        self.base.train_epoch(self.cfg)
    }

    fn after_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {
        if let Some(profiles) = &self.profiles {
            // Pull each entity toward its (fixed) literal profile: the
            // cross-KG unification signal of AttrE.
            let lr = self.cfg.lr * self.approach.attr_weight;
            for (uid, profile) in profiles {
                let row = self.base.model.entities.row_mut(*uid as usize);
                for i in 0..self.cfg.dim {
                    row[i] -= 2.0 * lr * (row[i] - profile[i]);
                }
            }
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach
            .output(&self.base.space, &self.base.model, self.cfg)
    }
}

impl AttrE {
    fn output(&self, space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
        let (emb1, emb2) = space.extract(model.entities());
        ApproachOutput::new(cfg.dim, Metric::Cosine, emb1, emb2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::{EntityId, KgBuilder};

    #[test]
    fn char_profiles_match_shared_literals() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "name", "mount everest");
        b1.add_attr_triple("y", "name", "totally different");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "label", "mount everest");
        let kg2 = b2.build();
        let dim = 32;
        let p1 = char_profiles(&kg1, dim);
        let p2 = char_profiles(&kg2, dim);
        let x = kg1.entity_by_name("x").unwrap();
        let y = kg1.entity_by_name("y").unwrap();
        let u = kg2.entity_by_name("u").unwrap();
        let row = |p: &[f32], e: EntityId| p[e.idx() * dim..(e.idx() + 1) * dim].to_vec();
        let sim_xu = vecops::cosine(&row(&p1, x), &row(&p2, u));
        let sim_yu = vecops::cosine(&row(&p1, y), &row(&p2, u));
        assert!(sim_xu > 0.99);
        assert!(sim_yu < sim_xu);
    }

    #[test]
    fn entities_without_literals_have_zero_profile() {
        let mut b = KgBuilder::new("a");
        b.add_rel_triple("x", "r", "y");
        let kg = b.build();
        let p = char_profiles(&kg, 8);
        assert!(p.iter().all(|&v| v == 0.0));
    }
}
