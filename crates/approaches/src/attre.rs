//! AttrE \[77\]: attribute-embedding-driven alignment. Relation triples are
//! embedded with TransE; literal values are encoded by a *character-level*
//! compositional encoder shared by both KGs, and each entity is pulled
//! toward its literal profile. Because the character encoder is the same for
//! both KGs, the attribute triples unify the two embedding spaces — but only
//! when the KGs share a surface language (the paper notes the character
//! encoder "may fail in cross-lingual settings", which this reproduces).
//! Cosine metric, sharing combination.

use crate::common::{
    train_epoch_batched, validation_hits1, Approach, ApproachOutput, Combination, EarlyStopper,
    EpochStats, Req, Requirements, RunConfig, TraceRecorder, TrainTrace, UnifiedSpace,
};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::UniformSampler;
use openea_math::vecops;
use openea_models::literal::char_ngram_vector;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::SmallRng;
use openea_runtime::rng::{RngCore, SeedableRng};

/// The character-level literal profile of every entity: the normalized sum
/// of character-n-gram vectors of its attribute values.
pub fn char_profiles(kg: &KnowledgeGraph, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; kg.num_entities() * dim];
    for e in kg.entity_ids() {
        let row = &mut out[e.idx() * dim..(e.idx() + 1) * dim];
        for &(_, v) in kg.attrs_of(e) {
            let cv = char_ngram_vector(kg.literal_value(v), dim);
            vecops::axpy(1.0, &cv, row);
        }
        vecops::normalize(row);
    }
    out
}

/// AttrE.
pub struct AttrE {
    /// Strength of the pull toward the literal profile.
    pub attr_weight: f32,
}

impl Default for AttrE {
    fn default() -> Self {
        Self { attr_weight: 0.5 }
    }
}

impl Approach for AttrE {
    fn name(&self) -> &'static str {
        "AttrE"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            rel_triples: Req::Optional,
            attr_triples: Req::Optional,
            pre_aligned_entities: Req::Mandatory,
            pre_aligned_properties: Req::Optional,
            word_embeddings: Req::NotApplicable,
        }
    }

    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);
        let mut model = TransE::new(
            space.num_entities,
            space.num_relations.max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let sampler = UniformSampler {
            num_entities: space.num_entities.max(1) as u32,
        };

        // Fixed character-level literal profiles (unified ids).
        let profiles: Option<Vec<(u32, Vec<f32>)>> = cfg.use_attributes.then(|| {
            let p1 = char_profiles(&pair.kg1, cfg.dim);
            let p2 = char_profiles(&pair.kg2, cfg.dim);
            let mut v = Vec::new();
            for e in pair.kg1.entity_ids() {
                let row = &p1[e.idx() * cfg.dim..(e.idx() + 1) * cfg.dim];
                if row.iter().any(|&x| x != 0.0) {
                    v.push((space.uid1(e), row.to_vec()));
                }
            }
            for e in pair.kg2.entity_ids() {
                let row = &p2[e.idx() * cfg.dim..(e.idx() + 1) * cfg.dim];
                if row.iter().any(|&x| x != 0.0) {
                    v.push((space.uid2(e), row.to_vec()));
                }
            }
            v
        });

        let opts = cfg.train_options(space.triples.len());
        let mut rec = TraceRecorder::new(self.name());
        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut best: Option<ApproachOutput> = None;
        for epoch in 0..cfg.max_epochs {
            rec.begin_epoch();
            let stats = if cfg.use_relations {
                train_epoch_batched(&mut model, &space.triples, &sampler, &opts, rng.next_u64())
                    .expect("valid train options")
            } else {
                EpochStats::default()
            };
            if let Some(profiles) = &profiles {
                // Pull each entity toward its (fixed) literal profile:
                // the cross-KG unification signal of AttrE.
                let lr = cfg.lr * self.attr_weight;
                for (uid, profile) in profiles {
                    let row = model.entities.row_mut(*uid as usize);
                    for i in 0..cfg.dim {
                        row[i] -= 2.0 * lr * (row[i] - profile[i]);
                    }
                }
            }
            rec.end_epoch(epoch, stats);
            if (epoch + 1) % cfg.check_every == 0 {
                let out = self.output(&space, &model, cfg);
                let score = validation_hits1(&out, &split.valid, cfg.threads);
                rec.record_validation(score);
                let improved = score > stopper.best();
                if improved || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    break;
                }
            }
        }
        let mut out = best.unwrap_or_else(|| self.output(&space, &model, cfg));
        out.trace = rec.finish();
        out
    }
}

impl AttrE {
    fn output(&self, space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
        let (emb1, emb2) = space.extract(model.entities());
        ApproachOutput {
            dim: cfg.dim,
            metric: Metric::Cosine,
            emb1,
            emb2,
            augmentation: Vec::new(),
            trace: TrainTrace::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::{EntityId, KgBuilder};

    #[test]
    fn char_profiles_match_shared_literals() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "name", "mount everest");
        b1.add_attr_triple("y", "name", "totally different");
        let kg1 = b1.build();
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "label", "mount everest");
        let kg2 = b2.build();
        let dim = 32;
        let p1 = char_profiles(&kg1, dim);
        let p2 = char_profiles(&kg2, dim);
        let x = kg1.entity_by_name("x").unwrap();
        let y = kg1.entity_by_name("y").unwrap();
        let u = kg2.entity_by_name("u").unwrap();
        let row = |p: &[f32], e: EntityId| p[e.idx() * dim..(e.idx() + 1) * dim].to_vec();
        let sim_xu = vecops::cosine(&row(&p1, x), &row(&p2, u));
        let sim_yu = vecops::cosine(&row(&p1, y), &row(&p2, u));
        assert!(sim_xu > 0.99);
        assert!(sim_yu < sim_xu);
    }

    #[test]
    fn entities_without_literals_have_zero_profile() {
        let mut b = KgBuilder::new("a");
        b.add_rel_triple("x", "r", "y");
        let kg = b.build();
        let p = char_profiles(&kg, 8);
        assert!(p.iter().all(|&v| v == 0.0));
    }
}
