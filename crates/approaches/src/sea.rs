//! SEA \[57\]: semi-supervised entity alignment with awareness of degree
//! difference. Triple-based embedding with an embedding-space transformation
//! plus a cycle-consistency term (`M̄·M·e₁ ≈ e₁`) over *unlabeled* entities —
//! the mechanism through which SEA exploits non-seed data and counteracts the
//! degree-driven drift of the mapping. Cosine metric.

use crate::common::{Approach, ApproachOutput, Requirements, RunConfig, TrainError};
use crate::engine::RunContext;
use crate::mtranse::RelModelKind;
use crate::transformation::TransformationHarness;
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair};

/// SEA with its degree-aware cycle regularizer.
pub struct Sea {
    /// Weight of the cycle-consistency term.
    pub cycle_weight: f32,
}

impl Default for Sea {
    fn default() -> Self {
        Self { cycle_weight: 0.5 }
    }
}

impl Approach for Sea {
    fn name(&self) -> &'static str {
        "SEA"
    }

    fn requirements(&self) -> Requirements {
        Requirements::RELATION_BASED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let factory = RelModelKind::TransE.factory();
        let h = TransformationHarness {
            factory: &factory,
            label: self.name(),
            metric: Metric::Cosine,
            cycle_weight: self.cycle_weight,
            orthogonal: false,
            update_entities: true,
            requirements: self.requirements(),
        };
        h.try_run(pair, split, cfg, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Req;

    #[test]
    fn sea_uses_cosine_and_cycle() {
        let s = Sea::default();
        assert!(s.cycle_weight > 0.0);
        assert_eq!(s.name(), "SEA");
        assert_eq!(s.requirements().attr_triples, Req::NotApplicable);
    }
}
