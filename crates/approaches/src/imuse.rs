//! IMUSE \[28\]: "unsupervised" entity alignment via a preprocessing step that
//! collects high-string-similarity entity pairs as (noisy) extra seeds, then
//! trains a TransE embedding with parameter sharing over the merged seed set
//! and combines relation and attribute similarity at inference. As the paper
//! notes, IMUSE still consumes the given seed alignment — its preprocessing
//! only *augments* it (and the errors it introduces can hurt).

use crate::common::{
    weighted_concat, Approach, ApproachOutput, Combination, EpochStats, Requirements, RunConfig,
    TrainError, UnifiedSpace, UnifiedTransE,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::{greedy_collective, Metric, SimilarityMatrix};
use openea_core::{AlignedPair, EntityId, FoldSplit, KgPair, KnowledgeGraph};
use openea_models::{RelationModel, TransE};
use std::collections::{HashMap, HashSet};

/// Finds candidate pairs by shared literal values, scores them by weighted
/// overlap, and returns a 1-to-1 set above `threshold`.
pub fn string_match_seeds(
    kg1: &KnowledgeGraph,
    kg2: &KnowledgeGraph,
    threshold: f32,
) -> Vec<AlignedPair> {
    // Inverted index over exact literal values of KG2.
    let mut index: HashMap<&str, Vec<EntityId>> = HashMap::new();
    for e in kg2.entity_ids() {
        for &(_, v) in kg2.attrs_of(e) {
            index.entry(kg2.literal_value(v)).or_default().push(e);
        }
    }
    // Rarity-weighted overlap: shared rare values are strong evidence.
    let mut scores: HashMap<(EntityId, EntityId), f32> = HashMap::new();
    for e1 in kg1.entity_ids() {
        for &(_, v) in kg1.attrs_of(e1) {
            if let Some(matches) = index.get(kg1.literal_value(v)) {
                if matches.len() > 8 {
                    continue; // too common to be informative
                }
                let w = 1.0 / matches.len() as f32;
                for &e2 in matches {
                    *scores.entry((e1, e2)).or_insert(0.0) += w;
                }
            }
        }
    }
    // Greedy 1-to-1 by descending score.
    let mut ranked: Vec<((EntityId, EntityId), f32)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let mut used1 = HashSet::new();
    let mut used2 = HashSet::new();
    let mut out = Vec::new();
    for ((e1, e2), s) in ranked {
        if s < threshold {
            break;
        }
        if !used1.contains(&e1) && !used2.contains(&e2) {
            used1.insert(e1);
            used2.insert(e2);
            out.push((e1, e2));
        }
    }
    out
}

/// IMUSE.
pub struct Imuse {
    /// Minimum rarity-weighted overlap for a preprocessing seed.
    pub string_threshold: f32,
    /// Weight of the relation view in the final combined similarity.
    pub rel_weight: f32,
}

impl Default for Imuse {
    fn default() -> Self {
        Self {
            string_threshold: 1.5,
            rel_weight: 0.6,
        }
    }
}

impl Approach for Imuse {
    fn name(&self) -> &'static str {
        "IMUSE"
    }

    fn requirements(&self) -> Requirements {
        Requirements::LITERAL_AUGMENTED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        // Preprocessing: augment the seeds with string matches (may be wrong).
        let mut seeds = split.train.clone();
        if cfg.use_attributes {
            let taken1: HashSet<EntityId> = seeds.iter().map(|&(a, _)| a).collect();
            let taken2: HashSet<EntityId> = seeds.iter().map(|&(_, b)| b).collect();
            for (a, b) in string_match_seeds(&pair.kg1, &pair.kg2, self.string_threshold) {
                if !taken1.contains(&a) && !taken2.contains(&b) {
                    seeds.push((a, b));
                }
            }
        }
        let space = UnifiedSpace::build(pair, &seeds, Combination::Sharing);
        let base = UnifiedTransE::new(space, cfg, ctx.driver_rng());

        // Attribute view: literal features through the (word-vector) encoder.
        let enc = cfg.literal_encoder();
        let attr1 = cfg
            .use_attributes
            .then(|| crate::common::literal_features(&pair.kg1, &enc));
        let attr2 = cfg
            .use_attributes
            .then(|| crate::common::literal_features(&pair.kg2, &enc));

        let mut hooks = Hooks {
            approach: self,
            cfg,
            base,
            attr1,
            attr2,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

struct Hooks<'a> {
    approach: &'a Imuse,
    cfg: &'a RunConfig,
    base: UnifiedTransE,
    attr1: Option<Vec<f32>>,
    attr2: Option<Vec<f32>>,
}

impl EpochHooks for Hooks<'_> {
    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        self.base.warm_start(warm, ctx)
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        // Attribute-only mode still needs *some* embedding: entities keep
        // their initialization; only the combination matters.
        self.base.train_epoch(self.cfg)
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.output(
            &self.base.space,
            &self.base.model,
            self.attr1.as_deref(),
            self.attr2.as_deref(),
            self.cfg,
        )
    }
}

impl Imuse {
    fn output(
        &self,
        space: &UnifiedSpace,
        model: &TransE,
        attr1: Option<&[f32]>,
        attr2: Option<&[f32]>,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let (s1, s2) = space.extract(model.entities());
        match (attr1, attr2) {
            // Weighted concatenation realizes the relation/attribute
            // similarity merge under cosine.
            (Some(a1), Some(a2)) => {
                let (wr, wa) = (self.rel_weight, 1.0 - self.rel_weight);
                let enc_dim = a1.len() / (s1.len() / cfg.dim).max(1);
                ApproachOutput::new(
                    cfg.dim + enc_dim,
                    Metric::Cosine,
                    weighted_concat(&s1, cfg.dim, wr, &[(a1, enc_dim, wa)]),
                    weighted_concat(&s2, cfg.dim, wr, &[(a2, enc_dim, wa)]),
                )
            }
            _ => ApproachOutput::new(cfg.dim, Metric::Cosine, s1, s2),
        }
    }
}

/// Greedy-collective match over a similarity matrix, exposed for tests.
pub fn one_to_one(sim: &SimilarityMatrix) -> Vec<Option<usize>> {
    greedy_collective(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;

    #[test]
    fn string_seeds_find_rare_shared_literals() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "name", "unique literal alpha");
        b1.add_attr_triple("x", "pop", "12000");
        b1.add_attr_triple("y", "name", "another one");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "label", "unique literal alpha");
        b2.add_attr_triple("u", "population", "12000");
        b2.add_attr_triple("w", "label", "something else");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let seeds = string_match_seeds(&kg1, &kg2, 1.5);
        assert_eq!(seeds.len(), 1);
        assert_eq!(kg1.entity_name(seeds[0].0), "x");
        assert_eq!(kg2.entity_name(seeds[0].1), "u");
    }

    #[test]
    fn common_values_are_ignored() {
        let mut b1 = KgBuilder::new("a");
        let mut b2 = KgBuilder::new("b");
        for i in 0..20 {
            b1.add_attr_triple(&format!("x{i}"), "type", "city");
            b2.add_attr_triple(&format!("u{i}"), "kind", "city");
        }
        let seeds = string_match_seeds(&b1.build(), &b2.build(), 0.5);
        assert!(
            seeds.is_empty(),
            "shared common value must not create seeds"
        );
    }

    #[test]
    fn seeds_are_one_to_one() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "name", "val shared");
        b1.add_attr_triple("y", "name", "val shared");
        b1.add_attr_triple("x", "other", "rare one");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "label", "val shared");
        b2.add_attr_triple("u", "more", "rare one");
        let seeds = string_match_seeds(&b1.build(), &b2.build(), 0.4);
        let mut s1 = HashSet::new();
        let mut s2 = HashSet::new();
        for (a, b) in seeds {
            assert!(s1.insert(a));
            assert!(s2.insert(b));
        }
    }
}
