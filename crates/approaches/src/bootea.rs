//! BootEA \[73\]: bootstrapping entity alignment. A TransE variant with the
//! **limit-based loss** and **truncated negative sampling** in a unified
//! space with **parameter swapping**, plus conflict-edited self-training:
//! every few epochs the current embeddings propose a 1-to-1 set of likely
//! alignment, which is fed back as swapped triples and calibration targets.
//! Cosine metric, semi-supervised.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    augmentation_quality, calibrate, train_epoch_batched, Approach, ApproachOutput, Combination,
    EpochStats, Req, Requirements, RunConfig, TrainError, TrainOptions, UnifiedSpace,
};
use crate::engine::{run_driver, EpochHooks, RunContext};
use openea_align::{Metric, PrfScores, TopKMatrix};
use openea_core::{EntityId, FoldSplit, KgPair};
use openea_math::negsamp::{RawTriple, TruncatedSampler, UniformSampler};
use openea_models::translational::LossKind;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::{RngCore, SmallRng};
use std::collections::HashSet;

/// BootEA.
pub struct BootEa {
    /// Epochs between bootstrapping rounds.
    pub boot_every: usize,
    /// Cosine threshold for accepting proposals.
    pub threshold: f32,
    /// ε of the truncated sampler (fraction of entities *excluded* from the
    /// hard-candidate lists).
    pub epsilon: f64,
    /// Ablation switch for the Sect. 5.2 study: disable self-training.
    pub bootstrapping: bool,
}

impl Default for BootEa {
    fn default() -> Self {
        Self {
            boot_every: 15,
            threshold: 0.75,
            epsilon: 0.98,
            bootstrapping: true,
        }
    }
}

impl BootEa {
    /// Rebuilds the per-entity hard-negative candidate lists from the
    /// current embeddings (the "truncated ε-sampling" of the paper): the
    /// σ most cosine-similar entities per entity, excluding self, via the
    /// streaming top-k kernel (k = σ+1 so the self hit can be dropped).
    fn refresh_sampler(&self, model: &TransE, threads: usize) -> TruncatedSampler {
        let table = model.entities();
        let n = table.count();
        let sigma = TruncatedSampler::truncation_size(n, self.epsilon).min(64);
        if n == 0 || sigma == 0 {
            return TruncatedSampler::new(vec![Vec::new(); n]);
        }
        let data = table.data();
        let topk = TopKMatrix::compute(data, data, table.dim(), Metric::Cosine, sigma + 1, threads);
        let candidates: Vec<Vec<u32>> = (0..n)
            .map(|e| {
                topk.row(e)
                    .iter()
                    .filter(|&&(o, _)| o as usize != e)
                    .take(sigma)
                    .map(|&(o, _)| o)
                    .collect()
            })
            .collect();
        TruncatedSampler::new(candidates)
    }

    fn output(&self, space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
        let (emb1, emb2) = space.extract(model.entities());
        ApproachOutput::new(cfg.dim, Metric::Cosine, emb1, emb2)
    }
}

impl Approach for BootEa {
    fn name(&self) -> &'static str {
        "BootEA"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Mandatory, NotApplicable, Mandatory, Optional, NotApplicable)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let mut rng = ctx.driver_rng();
        let space = UnifiedSpace::build(pair, &split.train, Combination::Swapping);
        let base_triples = space.triples.clone();
        let mut model = TransE::new(
            space.num_entities,
            space.num_relations.max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        model.loss = LossKind::Limit {
            lambda_pos: 0.05,
            lambda_neg: 1.2,
            mu: 0.2,
        };
        let gold: HashSet<(EntityId, EntityId)> = pair
            .alignment
            .iter()
            .copied()
            .filter(|p| !split.train.contains(p))
            .collect();

        let opts = cfg.train_options(base_triples.len());
        let uniform = UniformSampler {
            num_entities: space.num_entities.max(1) as u32,
        };
        let mut hooks = Hooks {
            approach: self,
            pair,
            cfg,
            space,
            model,
            uniform,
            truncated: None,
            triples: base_triples.clone(),
            base_triples,
            train_set: split.train.iter().map(|&(a, _)| a).collect(),
            train_set2: split.train.iter().map(|&(_, b)| b).collect(),
            gold,
            proposed: Vec::new(),
            augmentation: Vec::new(),
            opts,
            rng,
        };
        let mut out = run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)?;
        out.augmentation = hooks.augmentation;
        Ok(out)
    }
}

/// Engine hooks: limit-loss TransE over the (possibly swapped) triples with
/// truncated negatives once bootstrapping starts, per-epoch calibration of
/// the proposed pairs, and a conflict-edited self-training round every
/// `boot_every` epochs.
struct Hooks<'a> {
    approach: &'a BootEa,
    pair: &'a KgPair,
    cfg: &'a RunConfig,
    space: UnifiedSpace,
    model: TransE,
    uniform: UniformSampler,
    truncated: Option<TruncatedSampler>,
    triples: Vec<RawTriple>,
    base_triples: Vec<RawTriple>,
    train_set: HashSet<EntityId>,
    train_set2: HashSet<EntityId>,
    gold: HashSet<(EntityId, EntityId)>,
    proposed: Vec<(EntityId, EntityId)>,
    augmentation: Vec<PrfScores>,
    opts: TrainOptions,
    rng: SmallRng,
}

impl EpochHooks for Hooks<'_> {
    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        if !self.cfg.use_relations {
            return EpochStats::default();
        }
        let seed = self.rng.next_u64();
        match &self.truncated {
            Some(s) => train_epoch_batched(&mut self.model, &self.triples, s, &self.opts, seed),
            None => train_epoch_batched(
                &mut self.model,
                &self.triples,
                &self.uniform,
                &self.opts,
                seed,
            ),
        }
        .expect("valid train options")
    }

    fn after_epoch(&mut self, epoch: usize, _ctx: &RunContext<'_>) {
        // Calibrate the bootstrapped pairs each epoch.
        let prop_uids: Vec<(u32, u32)> = self
            .proposed
            .iter()
            .map(|&(a, b)| (self.space.uid1(a), self.space.uid2(b)))
            .collect();
        calibrate(&mut self.model.entities, &prop_uids, self.cfg.lr);

        if self.approach.bootstrapping && (epoch + 1).is_multiple_of(self.approach.boot_every) {
            // Refresh hard negatives from the current space.
            self.truncated = Some(self.approach.refresh_sampler(&self.model, self.cfg.threads));
            // Propose a fresh, conflict-edited alignment each round.
            let out = self.approach.output(&self.space, &self.model, self.cfg);
            let cand1 = unaligned_entities(self.pair.kg1.num_entities(), &self.train_set);
            let cand2 = unaligned_entities(self.pair.kg2.num_entities(), &self.train_set2);
            self.proposed = propose_alignment(
                &out,
                &cand1,
                &cand2,
                self.approach.threshold,
                true,
                self.cfg.threads,
            );
            self.augmentation
                .push(augmentation_quality(&self.proposed, &self.gold));
            // Swap triples for the new proposals on top of the base set.
            self.triples = self.base_triples.clone();
            self.triples
                .extend(self.space.swap_triples(self.pair, &self.proposed));
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.output(&self.space, &self.model, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_math::negsamp::NegSampler;
    use openea_math::{EmbeddingTable, Initializer};
    use openea_runtime::rng::SeedableRng;

    #[test]
    fn refresh_sampler_builds_topk_lists() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = TransE::new(30, 2, 8, 1.0, &mut rng);
        model.entities = EmbeddingTable::new(30, 8, Initializer::Unit, &mut rng);
        let b = BootEa::default();
        let sampler = b.refresh_sampler(&model, 2);
        // Sampling must produce in-range corruptions.
        for _ in 0..50 {
            let (h, _, t) = sampler.corrupt((3, 0, 7), &mut rng);
            assert!(h < 30 && t < 30);
        }
    }

    #[test]
    fn truncated_candidates_are_similar_entities() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut model = TransE::new(4, 1, 2, 1.0, &mut rng);
        // Entities 0 and 1 nearly parallel; 2, 3 orthogonal to them.
        model.entities.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        model.entities.row_mut(1).copy_from_slice(&[0.99, 0.1]);
        model.entities.row_mut(2).copy_from_slice(&[0.0, 1.0]);
        model.entities.row_mut(3).copy_from_slice(&[0.0, -1.0]);
        let b = BootEa {
            epsilon: 0.75,
            ..BootEa::default()
        }; // σ = 1
        let s = b.refresh_sampler(&model, 1);
        // The hardest negative for entity 0 must be entity 1.
        let mut saw_one = false;
        for _ in 0..100 {
            let (h, _, _) = s.corrupt((0, 0, 2), &mut rng);
            if h != 0 {
                assert_eq!(h, 1);
                saw_one = true;
            }
        }
        assert!(saw_one);
    }

    #[test]
    fn defaults_enable_bootstrapping() {
        let b = BootEa::default();
        assert!(b.bootstrapping);
        assert_eq!(b.name(), "BootEA");
    }
}
