//! AliNet \[74\] — the contemporaneous approach the paper promises to add in
//! a "future release of OpenEA" (Sect. 5.1): entity alignment with **gated
//! multi-hop neighborhood aggregation**. One-hop and two-hop neighborhood
//! representations are aggregated separately and blended by a learned gate,
//! which makes the encoder robust to the neighborhood heterogeneity between
//! two KGs (counterpart entities rarely have identical one-hop contexts).

use crate::common::{Approach, ApproachOutput, Requirements, RunConfig, TrainError};
use crate::engine::{run_driver, RunContext};
use crate::gcn::{split_normalized, union_edges, GnnHooks, GnnModel};
use openea_autodiff::{Graph, SparseMatrix, Tensor};
use openea_core::{AlignedPair, FoldSplit, KgPair};
use openea_runtime::rng::Rng;
use openea_runtime::rng::SmallRng;

/// AliNet.
pub struct AliNet;

impl Default for AliNet {
    fn default() -> Self {
        Self
    }
}

struct AliNetParams {
    graph: Graph,
    adj1: usize,
    adj2: usize,
    x: Tensor,
    w1: Tensor,
    w2: Tensor,
    wg: Tensor,
    n1: usize,
    n2: usize,
}

impl AliNetParams {
    fn new<R: Rng>(pair: &KgPair, dim: usize, rng: &mut R) -> Self {
        let (n, edges) = union_edges(pair, true);
        // Two-hop adjacency: neighbours-of-neighbours (paths of length 2).
        let two_hop = two_hop_edges(n, &edges);
        let mut graph = Graph::new();
        let adj1 = graph.add_sparse(SparseMatrix::gcn_normalized_weighted(n, &edges));
        let adj2 = graph.add_sparse(SparseMatrix::gcn_normalized_weighted(n, &two_hop));
        Self {
            graph,
            adj1,
            adj2,
            x: Tensor::xavier(n, dim, rng),
            w1: near_identity(dim, rng),
            w2: near_identity(dim, rng),
            wg: Tensor::xavier(dim, dim, rng),
            n1: pair.kg1.num_entities(),
            n2: pair.kg2.num_entities(),
        }
    }

    /// Forward: `H = g ⊙ H₁ + (1 − g) ⊙ H₂` where H₁ aggregates one-hop,
    /// H₂ two-hop, and the gate `g = σ(H₁·W_g)` decides per dimension.
    fn forward(
        g: &mut Graph,
        adj1: usize,
        adj2: usize,
        x: openea_autodiff::Var,
        w1: openea_autodiff::Var,
        w2: openea_autodiff::Var,
        wg: openea_autodiff::Var,
    ) -> openea_autodiff::Var {
        let xw1 = g.matmul(x, w1);
        let h1p = g.spmm(adj1, xw1);
        let h1 = g.tanh(h1p);
        let xw2 = g.matmul(x, w2);
        let h2p = g.spmm(adj2, xw2);
        let h2 = g.tanh(h2p);
        let gate_in = g.matmul(h1, wg);
        let gate = g.sigmoid(gate_in);
        let keep = g.mul(gate, h1);
        let neg_gate = g.scale(gate, -1.0);
        let shape = (g.value(gate).rows, g.value(gate).cols, g.value(gate).len());
        let ones = g.leaf(Tensor::from_vec(shape.0, shape.1, vec![1.0; shape.2]));
        let inv = g.add(ones, neg_gate);
        let far = g.mul(inv, h2);
        g.add(keep, far)
    }

    fn step<R: Rng>(&mut self, seeds: &[AlignedPair], margin: f32, lr: f32, rng: &mut R) -> f32 {
        if seeds.is_empty() {
            return 0.0;
        }
        let n1 = self.n1 as u32;
        let idx1: Vec<u32> = seeds.iter().map(|&(a, _)| a.0).collect();
        let idx2: Vec<u32> = seeds.iter().map(|&(_, b)| n1 + b.0).collect();
        let neg: Vec<u32> = seeds
            .iter()
            .map(|_| {
                if rng.gen_bool(0.5) {
                    n1 + rng.gen_range(0..self.n2 as u32)
                } else {
                    rng.gen_range(0..n1.max(1))
                }
            })
            .collect();

        self.graph.reset();
        let g = &mut self.graph;
        let x = g.leaf(self.x.clone());
        let w1 = g.leaf(self.w1.clone());
        let w2 = g.leaf(self.w2.clone());
        let wg = g.leaf(self.wg.clone());
        let h = Self::forward(g, self.adj1, self.adj2, x, w1, w2, wg);

        let h1 = g.gather(h, idx1);
        let h2 = g.gather(h, idx2);
        let hn = g.gather(h, neg);
        let pd = {
            let d = g.sub(h1, h2);
            let a = g.abs(d);
            g.sum_rows(a)
        };
        let nd = {
            let d = g.sub(h1, hn);
            let a = g.abs(d);
            g.sum_rows(a)
        };
        let diff = g.sub(pd, nd);
        let m = g.leaf(Tensor::from_vec(1, 1, vec![margin]));
        let arg = g.add_row(diff, m);
        let hinge = g.relu(arg);
        let loss = g.mean(hinge);
        let lv = g.value(loss).item();
        g.backward(loss);
        for (param, var) in [
            (&mut self.x, x),
            (&mut self.w1, w1),
            (&mut self.w2, w2),
            (&mut self.wg, wg),
        ] {
            let grad = g.grad(var);
            for (p, gg) in param.data.iter_mut().zip(&grad.data) {
                *p -= lr * gg;
            }
        }
        lv
    }

    fn output(&mut self, _cfg: &RunConfig) -> ApproachOutput {
        self.graph.reset();
        let g = &mut self.graph;
        let x = g.leaf(self.x.clone());
        let w1 = g.leaf(self.w1.clone());
        let w2 = g.leaf(self.w2.clone());
        let wg = g.leaf(self.wg.clone());
        let h = Self::forward(g, self.adj1, self.adj2, x, w1, w2, wg);
        split_normalized(g.value(h), self.n1)
    }
}

impl GnnModel for AliNetParams {
    fn step(&mut self, seeds: &[AlignedPair], margin: f32, lr: f32, rng: &mut SmallRng) -> f32 {
        AliNetParams::step(self, seeds, margin, lr, rng)
    }

    fn output(&mut self, cfg: &RunConfig) -> ApproachOutput {
        AliNetParams::output(self, cfg)
    }
}

/// Length-2 paths within each KG, capped per node to keep the matrix sparse.
fn two_hop_edges(n: usize, edges: &[(u32, u32, f32)]) -> Vec<(u32, u32, f32)> {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b, _) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let cap = 16;
    let mut out = Vec::new();
    for (u, neigh) in adj.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        'outer: for &m in neigh {
            for &v in &adj[m as usize] {
                if v as usize != u && seen.insert(v) {
                    out.push((u as u32, v, 0.5));
                    if seen.len() >= cap {
                        break 'outer;
                    }
                }
            }
        }
    }
    out
}

impl Approach for AliNet {
    fn name(&self) -> &'static str {
        "AliNet"
    }

    fn requirements(&self) -> Requirements {
        Requirements::RELATION_BASED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        cfg.validate()?;
        let mut rng = ctx.driver_rng();
        let mut params = AliNetParams::new(pair, cfg.dim, &mut rng);
        if !cfg.use_relations {
            return Ok(params.output(cfg));
        }
        let mut hooks = GnnHooks {
            cfg,
            seeds: &split.train,
            model: params,
            rng,
            finish: None,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

fn near_identity<R: Rng>(dim: usize, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(dim, dim);
    for i in 0..dim {
        t.data[i * dim + i] = 1.0;
    }
    for v in t.data.iter_mut() {
        *v += rng.gen_range(-0.05f32..0.05);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::k_fold_splits;
    use openea_runtime::rng::SeedableRng;

    #[test]
    fn two_hop_edges_skip_self_and_cap() {
        // Star: 0 is the hub of 1..=20.
        let edges: Vec<(u32, u32, f32)> = (1..=20).map(|i| (0u32, i, 1.0)).collect();
        let two = two_hop_edges(21, &edges);
        // Spokes reach each other through the hub; self-paths excluded.
        assert!(two.iter().all(|&(a, b, _)| a != b));
        let from_1: Vec<_> = two.iter().filter(|&&(a, _, _)| a == 1).collect();
        assert!(!from_1.is_empty());
        assert!(from_1.len() <= 16, "cap respected: {}", from_1.len());
    }

    #[test]
    fn alinet_beats_random_on_small_pair() {
        let pair =
            openea_synth::PresetConfig::new(openea_synth::DatasetFamily::EnFr, 250, false, 91)
                .generate();
        let mut rng = SmallRng::seed_from_u64(0);
        let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
        let cfg = RunConfig {
            dim: 16,
            max_epochs: 40,
            threads: 2,
            ..RunConfig::default()
        };
        let out = AliNet.run(&pair, &folds[0], &cfg);
        let eval = crate::common::evaluate_output(&out, &folds[0].test, 2);
        let random = 1.0 / folds[0].test.len() as f64;
        assert!(
            eval.hits1 > 4.0 * random,
            "hits1 {} vs random {}",
            eval.hits1,
            random
        );
    }
}
