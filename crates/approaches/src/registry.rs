//! Registry of the 12 integrated approaches.

use crate::attre::AttrE;
use crate::bootea::BootEa;
use crate::common::Approach;
use crate::gcnalign::GcnAlign;
use crate::imuse::Imuse;
use crate::iptranse::IpTransE;
use crate::jape::Jape;
use crate::kdcoe::KdCoe;
use crate::mtranse::MTransE;
use crate::multike::MultiKe;
use crate::rdgcn::Rdgcn;
use crate::rsn4ea::Rsn4Ea;
use crate::sea::Sea;

/// The 12 approaches of the study, in the paper's table order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApproachKind {
    MTransE,
    IPTransE,
    Jape,
    KdCoe,
    BootEa,
    GcnAlign,
    AttrE,
    Imuse,
    Sea,
    Rsn4Ea,
    MultiKe,
    Rdgcn,
}

impl ApproachKind {
    pub const ALL: [ApproachKind; 12] = [
        ApproachKind::MTransE,
        ApproachKind::IPTransE,
        ApproachKind::Jape,
        ApproachKind::KdCoe,
        ApproachKind::BootEa,
        ApproachKind::GcnAlign,
        ApproachKind::AttrE,
        ApproachKind::Imuse,
        ApproachKind::Sea,
        ApproachKind::Rsn4Ea,
        ApproachKind::MultiKe,
        ApproachKind::Rdgcn,
    ];

    /// Instantiates the approach with its default hyper-parameters.
    pub fn build(self) -> Box<dyn Approach> {
        match self {
            ApproachKind::MTransE => Box::new(MTransE::default()),
            ApproachKind::IPTransE => Box::new(IpTransE::default()),
            ApproachKind::Jape => Box::new(Jape::default()),
            ApproachKind::KdCoe => Box::new(KdCoe::default()),
            ApproachKind::BootEa => Box::new(BootEa::default()),
            ApproachKind::GcnAlign => Box::new(GcnAlign::default()),
            ApproachKind::AttrE => Box::new(AttrE::default()),
            ApproachKind::Imuse => Box::new(Imuse::default()),
            ApproachKind::Sea => Box::new(Sea::default()),
            ApproachKind::Rsn4Ea => Box::new(Rsn4Ea::default()),
            ApproachKind::MultiKe => Box::new(MultiKe::default()),
            ApproachKind::Rdgcn => Box::new(Rdgcn::default()),
        }
    }

    /// Whether the approach reports semi-supervised augmentation curves
    /// (the Figure 7 subjects).
    pub fn is_semi_supervised(self) -> bool {
        matches!(
            self,
            ApproachKind::IPTransE | ApproachKind::KdCoe | ApproachKind::BootEa
        )
    }
}

/// All 12 approaches with default settings.
pub fn all_approaches() -> Vec<Box<dyn Approach>> {
    ApproachKind::ALL.iter().map(|k| k.build()).collect()
}

/// Looks an approach up by its paper name (case-insensitive).
pub fn approach_by_name(name: &str) -> Option<Box<dyn Approach>> {
    all_approaches()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_distinct_approaches() {
        let all = all_approaches();
        assert_eq!(all.len(), 12);
        let names: std::collections::HashSet<_> = all.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(approach_by_name("BootEA").is_some());
        assert!(approach_by_name("rdgcn").is_some());
        assert!(approach_by_name("NoSuchThing").is_none());
    }

    #[test]
    fn semi_supervised_trio_matches_figure7() {
        let semi: Vec<_> = ApproachKind::ALL
            .iter()
            .filter(|k| k.is_semi_supervised())
            .collect();
        assert_eq!(semi.len(), 3);
    }

    #[test]
    fn every_approach_declares_requirements() {
        for a in all_approaches() {
            let r = a.requirements();
            // Every approach needs seed alignment (Table 9: all embedding
            // approaches have mandatory pre-aligned entities).
            assert_eq!(
                r.pre_aligned_entities,
                crate::common::Req::Mandatory,
                "{}",
                a.name()
            );
        }
    }
}
