//! IPTransE \[93\]: path-based translational embedding in a unified space with
//! parameter sharing, trained semi-supervised by uncurated self-training.
//!
//! The path objective infers that a two-hop path `(r₁, r₂)` between two
//! entities should compose (by summation) to any direct relation `r₃`
//! between them: `‖(r₁ + r₂) − r₃‖²` is minimized. Self-training proposes
//! each source's nearest neighbour above a threshold and *keeps the errors*
//! (no editing) — reproducing the paper's observation that IPTransE's
//! augmentation precision degrades over iterations.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    augmentation_quality, calibrate, Approach, ApproachOutput, Combination, EpochStats,
    Requirements, RunConfig, TrainError, UnifiedSpace, UnifiedTransE,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::{Metric, PrfScores};
use openea_core::{EntityId, FoldSplit, KgPair};
use openea_models::TransE;
use openea_runtime::rng::SliceRandom;
use std::collections::{HashMap, HashSet};

/// A mined path instance: relations `r1, r2` composing to direct `r3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathInstance {
    pub r1: u32,
    pub r2: u32,
    pub r3: u32,
}

/// Mines two-hop relation paths that parallel a direct relation, capped at
/// `max_instances` (they grow combinatorially).
pub fn mine_paths(triples: &[(u32, u32, u32)], max_instances: usize) -> Vec<PathInstance> {
    // direct[(h, t)] -> relations
    let mut direct: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
    let mut out_edges: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    for &(h, r, t) in triples {
        direct.entry((h, t)).or_default().push(r);
        out_edges.entry(h).or_default().push((r, t));
    }
    let mut found = Vec::new();
    'outer: for &(h, r1, m) in triples {
        if let Some(nexts) = out_edges.get(&m) {
            for &(r2, t) in nexts {
                if t == h {
                    continue;
                }
                if let Some(r3s) = direct.get(&(h, t)) {
                    for &r3 in r3s {
                        found.push(PathInstance { r1, r2, r3 });
                        if found.len() >= max_instances {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    found
}

/// IPTransE.
pub struct IpTransE {
    /// Epochs between self-training rounds.
    pub boot_every: usize,
    /// Cosine threshold for accepting a proposed pair.
    pub threshold: f32,
    /// Weight of the path-composition loss.
    pub path_weight: f32,
}

impl Default for IpTransE {
    fn default() -> Self {
        // The low threshold is faithful: IPTransE accepts nearest neighbours
        // liberally and has no error-editing mechanism, which is why its
        // augmentation precision degrades over iterations (Figure 7).
        Self {
            boot_every: 20,
            threshold: 0.35,
            path_weight: 0.3,
        }
    }
}

impl IpTransE {
    fn path_step(&self, model: &mut TransE, paths: &[PathInstance], lr: f32) {
        let dim = model.relations.dim();
        for p in paths {
            // u = (r1 + r2) − r3 ; pull each relation along −∇‖u‖².
            let u: Vec<f32> = (0..dim)
                .map(|i| {
                    model.relations.row(p.r1 as usize)[i] + model.relations.row(p.r2 as usize)[i]
                        - model.relations.row(p.r3 as usize)[i]
                })
                .collect();
            let s = 2.0 * lr * self.path_weight;
            #[allow(clippy::needless_range_loop)] // multi-array indexed math reads clearer
            for i in 0..dim {
                model.relations.row_mut(p.r1 as usize)[i] -= s * u[i];
                model.relations.row_mut(p.r2 as usize)[i] -= s * u[i];
                model.relations.row_mut(p.r3 as usize)[i] += s * u[i];
            }
        }
    }
}

impl Approach for IpTransE {
    fn name(&self) -> &'static str {
        "IPTransE"
    }

    fn requirements(&self) -> Requirements {
        Requirements::RELATION_BASED
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);
        let mut base = UnifiedTransE::new(space, cfg, ctx.driver_rng());
        let mut paths = mine_paths(&base.space.triples, 20_000);
        paths.shuffle(&mut base.rng);
        paths.truncate(4_000);

        let gold: HashSet<(EntityId, EntityId)> = pair
            .alignment
            .iter()
            .copied()
            .filter(|p| !split.train.contains(p))
            .collect();
        let mut hooks = Hooks {
            approach: self,
            pair,
            cfg,
            base,
            paths,
            // Self-training state: cumulative proposals (never revoked).
            taken1: split.train.iter().map(|&(a, _)| a).collect(),
            taken2: split.train.iter().map(|&(_, b)| b).collect(),
            proposed: Vec::new(),
            gold,
            augmentation: Vec::new(),
        };
        let mut out = run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)?;
        out.augmentation = hooks.augmentation;
        Ok(out)
    }
}

/// Engine hooks: translational training plus the path objective per epoch,
/// then soft calibration of proposed pairs and (every `boot_every` epochs)
/// a new self-training round.
struct Hooks<'a> {
    approach: &'a IpTransE,
    pair: &'a KgPair,
    cfg: &'a RunConfig,
    base: UnifiedTransE,
    paths: Vec<PathInstance>,
    taken1: HashSet<EntityId>,
    taken2: HashSet<EntityId>,
    proposed: Vec<(EntityId, EntityId)>,
    gold: HashSet<(EntityId, EntityId)>,
    augmentation: Vec<PrfScores>,
}

impl EpochHooks for Hooks<'_> {
    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        self.base.warm_start(warm, ctx)
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        let stats = self.base.train_epoch(self.cfg);
        if self.cfg.use_relations {
            self.approach
                .path_step(&mut self.base.model, &self.paths, self.cfg.lr);
        }
        stats
    }

    fn after_epoch(&mut self, epoch: usize, _ctx: &RunContext<'_>) {
        // Soft alignment for proposed pairs (seed pairs share ids already).
        let prop_uids: Vec<(u32, u32)> = self
            .proposed
            .iter()
            .map(|&(a, b)| (self.base.space.uid1(a), self.base.space.uid2(b)))
            .collect();
        calibrate(&mut self.base.model.entities, &prop_uids, self.cfg.lr);

        if (epoch + 1).is_multiple_of(self.approach.boot_every) {
            // Proposals are thresholded on cosine similarity (the output
            // metric is Euclidean, whose similarities are negative
            // distances and cannot carry a positive cutoff).
            let mut out = self
                .approach
                .output(&self.base.space, &self.base.model, self.cfg);
            out.metric = openea_align::Metric::Cosine;
            let cand1 = unaligned_entities(self.pair.kg1.num_entities(), &self.taken1);
            let cand2 = unaligned_entities(self.pair.kg2.num_entities(), &self.taken2);
            let new_pairs = propose_alignment(
                &out,
                &cand1,
                &cand2,
                self.approach.threshold,
                false,
                self.cfg.threads,
            );
            for &(a, b) in &new_pairs {
                self.taken1.insert(a);
                self.taken2.insert(b);
            }
            self.proposed.extend(new_pairs);
            self.augmentation
                .push(augmentation_quality(&self.proposed, &self.gold));
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach
            .output(&self.base.space, &self.base.model, self.cfg)
    }
}

impl IpTransE {
    fn output(&self, space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
        let (emb1, emb2) = space.extract(&model.entities);
        ApproachOutput::new(cfg.dim, Metric::Euclidean, emb1, emb2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_math::vecops;
    use openea_runtime::rng::{SeedableRng, SmallRng};

    #[test]
    fn mine_paths_finds_triangles() {
        // h -r0-> m -r1-> t and h -r2-> t.
        let triples = vec![(0, 0, 1), (1, 1, 2), (0, 2, 2)];
        let paths = mine_paths(&triples, 100);
        assert!(paths.contains(&PathInstance {
            r1: 0,
            r2: 1,
            r3: 2
        }));
    }

    #[test]
    fn mine_paths_ignores_back_edges() {
        // h -> m -> h has no distinct endpoint.
        let triples = vec![(0, 0, 1), (1, 1, 0)];
        assert!(mine_paths(&triples, 100).is_empty());
    }

    #[test]
    fn mine_paths_respects_cap() {
        let mut triples = Vec::new();
        for i in 0..20u32 {
            triples.push((0, i, 1));
            triples.push((1, i, 2));
            triples.push((0, i, 2));
        }
        assert_eq!(mine_paths(&triples, 50).len(), 50);
    }

    #[test]
    fn path_step_composes_relations() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut model = TransE::new(3, 3, 8, 1.0, &mut rng);
        let approach = IpTransE {
            path_weight: 1.0,
            ..IpTransE::default()
        };
        let p = PathInstance {
            r1: 0,
            r2: 1,
            r3: 2,
        };
        let residual = |m: &TransE| {
            let u: Vec<f32> = (0..8)
                .map(|i| m.relations.row(0)[i] + m.relations.row(1)[i] - m.relations.row(2)[i])
                .collect();
            vecops::norm2_sq(&u)
        };
        let before = residual(&model);
        for _ in 0..30 {
            approach.path_step(&mut model, &[p], 0.05);
        }
        assert!(residual(&model) < before * 0.2);
    }
}
