//! MultiKE \[90\]: multi-view knowledge-graph embedding. Three views —
//! **name** (literal encoding of the entity's name), **relation** (TransE in
//! a unified space with parameter swapping) and **attribute** (literal
//! profile over all attribute values) — are combined into one discriminative
//! representation. The multi-view redundancy makes MultiKE fast to converge
//! and robust to sparse relations (the paper's efficiency/effectiveness
//! sweet spot). Cosine metric, supervised.

use crate::common::{
    entity_name_literal, literal_features, weighted_concat, Approach, ApproachOutput, Combination,
    EpochStats, Req, Requirements, RunConfig, TrainError, UnifiedSpace, UnifiedTransE,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair, KnowledgeGraph};
use openea_models::literal::LiteralEncoder;
use openea_models::{RelationModel, TransE};

/// MultiKE view weights.
pub struct MultiKe {
    pub name_weight: f32,
    pub relation_weight: f32,
    pub attr_weight: f32,
}

impl Default for MultiKe {
    fn default() -> Self {
        Self {
            name_weight: 0.45,
            relation_weight: 0.35,
            attr_weight: 0.2,
        }
    }
}

/// Name-view features for one KG.
fn name_view(kg: &KnowledgeGraph, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let mut out = Vec::with_capacity(kg.num_entities() * dim);
    for e in kg.entity_ids() {
        match entity_name_literal(kg, e) {
            Some(name) => out.extend(enc.encode(name)),
            None => out.extend(std::iter::repeat_n(0.0, dim)),
        }
    }
    out
}

impl Approach for MultiKe {
    fn name(&self) -> &'static str {
        "MultiKE"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            pre_aligned_properties: Req::NotApplicable,
            ..Requirements::LITERAL_AUGMENTED
        }
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let space = UnifiedSpace::build(pair, &split.train, Combination::Swapping);
        let enc = cfg.literal_encoder();
        let views = cfg.use_attributes.then(|| {
            (
                name_view(&pair.kg1, &enc),
                name_view(&pair.kg2, &enc),
                literal_features(&pair.kg1, &enc),
                literal_features(&pair.kg2, &enc),
            )
        });

        let mut hooks = Hooks {
            approach: self,
            cfg,
            base: UnifiedTransE::new(space, cfg, ctx.driver_rng()),
            enc,
            views,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

struct Hooks<'a> {
    approach: &'a MultiKe,
    cfg: &'a RunConfig,
    base: UnifiedTransE,
    enc: LiteralEncoder,
    #[allow(clippy::type_complexity)]
    views: Option<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
}

impl EpochHooks for Hooks<'_> {
    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        self.base.warm_start(warm, ctx)
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        self.base.train_epoch(self.cfg)
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.combine(
            &self.base.space,
            &self.base.model,
            self.views.as_ref(),
            &self.enc,
            self.cfg,
        )
    }
}

impl MultiKe {
    #[allow(clippy::type_complexity)]
    fn combine(
        &self,
        space: &UnifiedSpace,
        model: &TransE,
        views: Option<&(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
        enc: &LiteralEncoder,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let (s1, s2) = space.extract(model.entities());
        let Some((n1, n2, a1, a2)) = views else {
            return ApproachOutput::new(cfg.dim, Metric::Cosine, s1, s2);
        };
        let enc_dim = enc.dim();
        let (wn, wr, wa) = if cfg.use_relations {
            (self.name_weight, self.relation_weight, self.attr_weight)
        } else {
            // Relation view disabled (Table 8): renormalize the others.
            let z = self.name_weight + self.attr_weight;
            (self.name_weight / z, 0.0, self.attr_weight / z)
        };
        let v1 = [(&n1[..], enc_dim, wn), (&a1[..], enc_dim, wa)];
        let v2 = [(&n2[..], enc_dim, wn), (&a2[..], enc_dim, wa)];
        ApproachOutput::new(
            cfg.dim + 2 * enc_dim,
            Metric::Cosine,
            weighted_concat(&s1, cfg.dim, wr, &v1),
            weighted_concat(&s2, cfg.dim, wr, &v2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_sum_to_one() {
        let m = MultiKe::default();
        assert!((m.name_weight + m.relation_weight + m.attr_weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn requirements_match_table9() {
        let r = MultiKe::default().requirements();
        assert_eq!(r.rel_triples, Req::Optional);
        assert_eq!(r.word_embeddings, Req::CrossLingualOnly);
    }
}
