//! MultiKE \[90\]: multi-view knowledge-graph embedding. Three views —
//! **name** (literal encoding of the entity's name), **relation** (TransE in
//! a unified space with parameter swapping) and **attribute** (literal
//! profile over all attribute values) — are combined into one discriminative
//! representation. The multi-view redundancy makes MultiKE fast to converge
//! and robust to sparse relations (the paper's efficiency/effectiveness
//! sweet spot). Cosine metric, supervised.

use crate::common::{
    entity_name_literal, literal_features, train_epoch_batched, validation_hits1, Approach,
    ApproachOutput, Combination, EarlyStopper, EpochStats, Req, Requirements, RunConfig,
    TraceRecorder, TrainTrace, UnifiedSpace,
};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair, KnowledgeGraph};
use openea_math::negsamp::UniformSampler;
use openea_math::vecops;
use openea_models::literal::LiteralEncoder;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::SmallRng;
use openea_runtime::rng::{RngCore, SeedableRng};

/// MultiKE view weights.
pub struct MultiKe {
    pub name_weight: f32,
    pub relation_weight: f32,
    pub attr_weight: f32,
}

impl Default for MultiKe {
    fn default() -> Self {
        Self {
            name_weight: 0.45,
            relation_weight: 0.35,
            attr_weight: 0.2,
        }
    }
}

/// Name-view features for one KG.
fn name_view(kg: &KnowledgeGraph, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let mut out = Vec::with_capacity(kg.num_entities() * dim);
    for e in kg.entity_ids() {
        match entity_name_literal(kg, e) {
            Some(name) => out.extend(enc.encode(name)),
            None => out.extend(std::iter::repeat_n(0.0, dim)),
        }
    }
    out
}

impl Approach for MultiKe {
    fn name(&self) -> &'static str {
        "MultiKE"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            rel_triples: Req::Optional,
            attr_triples: Req::Optional,
            pre_aligned_entities: Req::Mandatory,
            pre_aligned_properties: Req::NotApplicable,
            word_embeddings: Req::CrossLingualOnly,
        }
    }

    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let space = UnifiedSpace::build(pair, &split.train, Combination::Swapping);
        let mut model = TransE::new(
            space.num_entities,
            space.num_relations.max(1),
            cfg.dim,
            cfg.margin,
            &mut rng,
        );
        let sampler = UniformSampler {
            num_entities: space.num_entities.max(1) as u32,
        };

        let enc = cfg.literal_encoder();
        let views = cfg.use_attributes.then(|| {
            (
                name_view(&pair.kg1, &enc),
                name_view(&pair.kg2, &enc),
                literal_features(&pair.kg1, &enc),
                literal_features(&pair.kg2, &enc),
            )
        });

        let opts = cfg.train_options(space.triples.len());
        let mut rec = TraceRecorder::new(self.name());
        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut best: Option<ApproachOutput> = None;
        for epoch in 0..cfg.max_epochs {
            rec.begin_epoch();
            let stats = if cfg.use_relations {
                train_epoch_batched(&mut model, &space.triples, &sampler, &opts, rng.next_u64())
                    .expect("valid train options")
            } else {
                EpochStats::default()
            };
            rec.end_epoch(epoch, stats);
            if (epoch + 1) % cfg.check_every == 0 {
                let out = self.combine(&space, &model, views.as_ref(), &enc, cfg);
                let score = validation_hits1(&out, &split.valid, cfg.threads);
                rec.record_validation(score);
                let improved = score > stopper.best();
                if improved || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    break;
                }
            }
        }
        let mut out =
            best.unwrap_or_else(|| self.combine(&space, &model, views.as_ref(), &enc, cfg));
        out.trace = rec.finish();
        out
    }
}

impl MultiKe {
    #[allow(clippy::type_complexity)]
    fn combine(
        &self,
        space: &UnifiedSpace,
        model: &TransE,
        views: Option<&(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
        enc: &LiteralEncoder,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let (s1, s2) = space.extract(model.entities());
        let Some((n1, n2, a1, a2)) = views else {
            return ApproachOutput {
                dim: cfg.dim,
                metric: Metric::Cosine,
                emb1: s1,
                emb2: s2,
                augmentation: Vec::new(),
                trace: TrainTrace::default(),
            };
        };
        let enc_dim = enc.dim();
        let (wn, wr, wa) = if cfg.use_relations {
            (self.name_weight, self.relation_weight, self.attr_weight)
        } else {
            // Relation view disabled (Table 8): renormalize the others.
            let z = self.name_weight + self.attr_weight;
            (self.name_weight / z, 0.0, self.attr_weight / z)
        };
        let combine = |s: &[f32], nv: &[f32], av: &[f32]| {
            let n = nv.len() / enc_dim;
            let dim = cfg.dim + 2 * enc_dim;
            let mut out = Vec::with_capacity(n * dim);
            for i in 0..n {
                let mut srow = s[i * cfg.dim..(i + 1) * cfg.dim].to_vec();
                vecops::normalize(&mut srow);
                out.extend(srow.iter().map(|x| x * wr));
                out.extend(nv[i * enc_dim..(i + 1) * enc_dim].iter().map(|x| x * wn));
                out.extend(av[i * enc_dim..(i + 1) * enc_dim].iter().map(|x| x * wa));
            }
            out
        };
        ApproachOutput {
            dim: cfg.dim + 2 * enc_dim,
            metric: Metric::Cosine,
            emb1: combine(&s1, n1, a1),
            emb2: combine(&s2, n2, a2),
            augmentation: Vec::new(),
            trace: TrainTrace::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_sum_to_one() {
        let m = MultiKe::default();
        assert!((m.name_weight + m.relation_weight + m.attr_weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn requirements_match_table9() {
        let r = MultiKe::default().requirements();
        assert_eq!(r.rel_triples, Req::Optional);
        assert_eq!(r.word_embeddings, Req::CrossLingualOnly);
    }
}
