//! RDGCN \[83\]: relation-aware dual-graph convolutional network. Entity
//! *name* literals (encoded with pre-trained word vectors) initialize the
//! node features — the signal that makes RDGCN the strongest approach in the
//! paper — and a gated (highway) GCN over a relation-rarity-weighted union
//! graph refines them structurally. Margin calibration loss, Manhattan
//! metric, supervised.

use crate::common::{
    entity_name_literal, Approach, ApproachOutput, Req, Requirements, RunConfig, TrainError,
};
use crate::engine::{run_driver, RunContext};
use crate::gcn::{GcnEncoder, GnnHooks};
use openea_core::{FoldSplit, KgPair, KnowledgeGraph};
use openea_models::literal::LiteralEncoder;

/// Name-literal features for the union graph (`(n1+n2) × dim`).
pub fn name_features(pair: &KgPair, enc: &LiteralEncoder) -> Vec<f32> {
    let dim = enc.dim();
    let encode_kg = |kg: &KnowledgeGraph, out: &mut Vec<f32>| {
        for e in kg.entity_ids() {
            match entity_name_literal(kg, e) {
                Some(name) => out.extend(enc.encode(name)),
                None => out.extend(std::iter::repeat_n(0.0, dim)),
            }
        }
    };
    let mut out = Vec::with_capacity((pair.kg1.num_entities() + pair.kg2.num_entities()) * dim);
    encode_kg(&pair.kg1, &mut out);
    encode_kg(&pair.kg2, &mut out);
    out
}

/// RDGCN.
#[derive(Default)]
pub struct Rdgcn {
    /// Whether node features stay frozen (the name signal) or fine-tune.
    pub freeze_features: bool,
}

impl Approach for Rdgcn {
    fn name(&self) -> &'static str {
        "RDGCN"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Mandatory, Optional, Mandatory, Optional, Mandatory)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        cfg.validate()?;
        let mut rng = ctx.driver_rng();
        // Name features are RDGCN's key input; the Figure-6 ablation
        // (without attribute/literal information) falls back to random
        // trainable features.
        let features = cfg.use_attributes.then(|| {
            let enc = LiteralEncoder::new(cfg.word_vectors.clone());
            // Full literal profiles are stabler than the single name literal
            // under value noise (the name heuristic can pick different
            // literals on the two sides); they carry the same signal.
            let mut f = crate::common::literal_features(&pair.kg1, &enc);
            f.extend(crate::common::literal_features(&pair.kg2, &enc));
            f
        });
        let dim = cfg.dim;
        let features = features.map(|f| {
            // Project the encoder dimension onto cfg.dim if they differ
            // (truncate or pad — encoder dims match cfg.dim by default).
            let enc_dim = f.len() / (pair.kg1.num_entities() + pair.kg2.num_entities()).max(1);
            if enc_dim == dim {
                f
            } else {
                let n = f.len() / enc_dim.max(1);
                let mut out = vec![0.0f32; n * dim];
                for i in 0..n {
                    for j in 0..dim.min(enc_dim) {
                        out[i * dim + j] = f[i * enc_dim + j];
                    }
                }
                out
            }
        });
        let trainable = features.is_none() || !self.freeze_features;
        // The highway gate exists to preserve the name-feature signal; with
        // random features (attribute ablation) fall back to a plain GCN so
        // the relation module can still learn, as in the paper's Table 8.
        let highway = features.is_some();
        let mut enc = GcnEncoder::new(pair, features, dim, true, highway, trainable, &mut rng);

        if !cfg.use_relations {
            // Table 8: RDGCN cannot learn embeddings without relation
            // triples (the GCN has no edges) — output the raw features.
            return Ok(enc.output(cfg));
        }
        let mut hooks = GnnHooks {
            cfg,
            seeds: &split.train,
            model: enc,
            rng,
            finish: None,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;
    use openea_models::literal::WordVectors;

    #[test]
    fn name_features_cover_both_kgs() {
        let mut b1 = KgBuilder::new("a");
        b1.add_attr_triple("x", "name", "alpha");
        let mut b2 = KgBuilder::new("b");
        b2.add_attr_triple("u", "label", "alpha");
        b2.add_entity("nameless");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let x = kg1.entity_by_name("x").unwrap();
        let u = kg2.entity_by_name("u").unwrap();
        let pair = KgPair::new(kg1, kg2, vec![(x, u)]);
        let enc = LiteralEncoder::new(WordVectors::hash_only(8));
        let f = name_features(&pair, &enc);
        assert_eq!(f.len(), (1 + 2) * 8);
        // Identical names produce identical feature rows.
        assert_eq!(&f[0..8], &f[8..16]);
        // The nameless entity has a zero row.
        assert!(f[16..24].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn requirements_mark_word_embeddings_mandatory() {
        assert_eq!(
            Rdgcn::default().requirements().word_embeddings,
            Req::Mandatory
        );
    }
}
