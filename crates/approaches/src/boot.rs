//! Shared semi-supervised machinery: proposing new aligned pairs from the
//! current embeddings (self-training), with or without BootEA's conflict
//! editing.

use crate::common::ApproachOutput;
use openea_align::greedy_collective;
use openea_core::EntityId;
use std::collections::HashSet;

/// Candidates for augmentation: entities not yet in the (augmented) seed set.
pub fn unaligned_entities(total: usize, taken: &HashSet<EntityId>) -> Vec<EntityId> {
    (0..total)
        .map(EntityId::from_idx)
        .filter(|e| !taken.contains(e))
        .collect()
}

/// Proposes new alignment from the current embeddings.
///
/// * `editing = false` (IPTransE-style): every source's nearest target above
///   `threshold` is proposed — conflicts and errors accumulate.
/// * `editing = true` (BootEA-style): proposals are filtered to a 1-to-1
///   matching (greedy collective), which is the paper's "heuristic editing
///   method to remove wrong alignment".
pub fn propose_alignment(
    out: &ApproachOutput,
    cand1: &[EntityId],
    cand2: &[EntityId],
    threshold: f32,
    editing: bool,
    threads: usize,
) -> Vec<(EntityId, EntityId)> {
    if cand1.is_empty() || cand2.is_empty() {
        return Vec::new();
    }
    if editing {
        let sim = out.similarity(cand1, cand2, threads);
        greedy_collective(&sim)
            .into_iter()
            .enumerate()
            .filter_map(|(i, j)| {
                let j = j?;
                (sim.get(i, j) >= threshold).then_some((cand1[i], cand2[j]))
            })
            .collect()
    } else {
        // Per-source nearest neighbour only needs k = 1: stream it instead
        // of materializing the |cand1| × |cand2| matrix.
        let topk = out.topk(cand1, cand2, 1, threads);
        (0..cand1.len())
            .filter_map(|i| {
                let (j, s) = topk.best(i)?;
                (s >= threshold).then_some((cand1[i], cand2[j]))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_align::Metric;

    fn out(emb1: Vec<f32>, emb2: Vec<f32>) -> ApproachOutput {
        ApproachOutput::new(2, Metric::Cosine, emb1, emb2)
    }

    #[test]
    fn editing_enforces_one_to_one() {
        // Both sources point at target 0.
        let o = out(vec![1.0, 0.0, 0.9, 0.1], vec![1.0, 0.0, 0.0, 1.0]);
        let c1 = vec![EntityId(0), EntityId(1)];
        let c2 = vec![EntityId(0), EntityId(1)];
        let naive = propose_alignment(&o, &c1, &c2, 0.0, false, 1);
        let targets: Vec<_> = naive.iter().map(|&(_, b)| b).collect();
        assert_eq!(targets, vec![EntityId(0), EntityId(0)]); // conflict kept
        let edited = propose_alignment(&o, &c1, &c2, 0.0, true, 1);
        let tset: HashSet<_> = edited.iter().map(|&(_, b)| b).collect();
        assert_eq!(tset.len(), edited.len()); // 1-to-1
    }

    #[test]
    fn threshold_filters_weak_matches() {
        let o = out(vec![1.0, 0.0], vec![0.0, 1.0]); // orthogonal: sim 0
        let c1 = vec![EntityId(0)];
        let c2 = vec![EntityId(0)];
        assert!(propose_alignment(&o, &c1, &c2, 0.5, false, 1).is_empty());
        assert_eq!(propose_alignment(&o, &c1, &c2, -1.0, false, 1).len(), 1);
    }

    #[test]
    fn unaligned_excludes_taken() {
        let taken: HashSet<EntityId> = [EntityId(1)].into();
        assert_eq!(
            unaligned_entities(3, &taken),
            vec![EntityId(0), EntityId(2)]
        );
    }
}
