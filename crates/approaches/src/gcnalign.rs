//! GCNAlign \[81\]: neighborhood-based embedding with graph convolutional
//! networks over the union graph of both KGs, learnable input features, a
//! margin-based Manhattan calibration loss on the seeds, and an auxiliary
//! attribute-correlation view combined at inference. Supervised.

use crate::common::{
    validation_hits1, Approach, ApproachOutput, EarlyStopper, Req, Requirements, RunConfig,
    TrainTrace,
};
use crate::gcn::GcnEncoder;
use crate::jape::{entity_attr_sets, unify_attributes};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair};
use openea_math::vecops;
use openea_models::AttrCorrelationModel;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

/// Per-KG attribute-correlation feature vectors.
type AttrFeatures = (Vec<Vec<f32>>, Vec<Vec<f32>>);

/// GCNAlign.
pub struct GcnAlign {
    /// Weight of the structural GCN view (vs. the attribute view).
    pub structure_weight: f32,
}

impl Default for GcnAlign {
    fn default() -> Self {
        Self {
            structure_weight: 0.9,
        }
    }
}

impl Approach for GcnAlign {
    fn name(&self) -> &'static str {
        "GCNAlign"
    }

    fn requirements(&self) -> Requirements {
        Requirements {
            rel_triples: Req::Mandatory,
            attr_triples: Req::Optional,
            pre_aligned_entities: Req::Mandatory,
            pre_aligned_properties: Req::NotApplicable,
            word_embeddings: Req::NotApplicable,
        }
    }

    fn run(&self, pair: &KgPair, split: &FoldSplit, cfg: &RunConfig) -> ApproachOutput {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut enc = GcnEncoder::new(pair, None, cfg.dim, false, false, true, &mut rng);

        // Attribute view (shared with JAPE's AC2Vec machinery).
        let attr_features = cfg.use_attributes.then(|| {
            let (map1, map2, num_attrs) = unify_attributes(&pair.kg1, &pair.kg2);
            let sets1 = entity_attr_sets(&pair.kg1, &map1);
            let sets2 = entity_attr_sets(&pair.kg2, &map2);
            let mut all = sets1.clone();
            all.extend(sets2.iter().cloned());
            let mut ac = AttrCorrelationModel::new(num_attrs.max(2), cfg.dim, &mut rng);
            ac.train(&all, 4, cfg.lr, &mut rng);
            let f1: Vec<Vec<f32>> = sets1.iter().map(|s| ac.entity_feature(s)).collect();
            let f2: Vec<Vec<f32>> = sets2.iter().map(|s| ac.entity_feature(s)).collect();
            (f1, f2)
        });

        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut best: Option<ApproachOutput> = None;
        if !cfg.use_relations {
            // Without relation triples a GCN has no graph: fall back to the
            // (untrained) features — the degenerate case of Table 8.
            return self.combine(enc.output(cfg), attr_features.as_ref(), cfg);
        }
        for epoch in 0..cfg.max_epochs {
            // GCN training is full-batch: several steps per "epoch" tick,
            // with a higher learning rate than the sparse SGD approaches.
            for _ in 0..8 {
                enc.step(&split.train, cfg.margin, cfg.lr * 5.0, &mut rng);
            }
            if (epoch + 1) % cfg.check_every == 0 {
                let out = self.combine(enc.output(cfg), attr_features.as_ref(), cfg);
                let score = validation_hits1(&out, &split.valid, cfg.threads);
                let improved = score > stopper.best();
                if improved || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    break;
                }
            }
        }
        best.unwrap_or_else(|| self.combine(enc.output(cfg), attr_features.as_ref(), cfg))
    }
}

impl GcnAlign {
    fn combine(
        &self,
        structure: ApproachOutput,
        attr: Option<&AttrFeatures>,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let Some((f1, f2)) = attr else {
            return structure;
        };
        let sdim = structure.dim;
        let adim = cfg.dim;
        let ws = self.structure_weight;
        let wa = 1.0 - ws;
        let combine = |s: &[f32], f: &[Vec<f32>]| {
            let mut out = Vec::with_capacity(f.len() * (sdim + adim));
            for (i, feat) in f.iter().enumerate() {
                let mut srow = s[i * sdim..(i + 1) * sdim].to_vec();
                vecops::normalize(&mut srow);
                out.extend(srow.iter().map(|x| x * ws));
                out.extend(feat.iter().map(|x| x * wa));
            }
            out
        };
        ApproachOutput {
            dim: sdim + adim,
            metric: Metric::Manhattan,
            emb1: combine(&structure.emb1, f1),
            emb2: combine(&structure.emb2, f2),
            augmentation: Vec::new(),
            trace: TrainTrace::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_match_table9() {
        let g = GcnAlign::default();
        let r = g.requirements();
        assert_eq!(r.rel_triples, Req::Mandatory);
        assert_eq!(r.attr_triples, Req::Optional);
        assert_eq!(r.word_embeddings, Req::NotApplicable);
    }
}
