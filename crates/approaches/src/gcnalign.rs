//! GCNAlign \[81\]: neighborhood-based embedding with graph convolutional
//! networks over the union graph of both KGs, learnable input features, a
//! margin-based Manhattan calibration loss on the seeds, and an auxiliary
//! attribute-correlation view combined at inference. Supervised.

use crate::common::{
    weighted_concat, Approach, ApproachOutput, Req, Requirements, RunConfig, TrainError,
};
use crate::engine::{run_driver, RunContext};
use crate::gcn::{GcnEncoder, GnnHooks};
use crate::jape::{entity_attr_sets, unify_attributes};
use openea_align::Metric;
use openea_core::{FoldSplit, KgPair};
use openea_models::AttrCorrelationModel;

/// Per-KG attribute-correlation feature vectors (row-major, `dim` wide).
type AttrFeatures = (Vec<f32>, Vec<f32>);

/// GCNAlign.
pub struct GcnAlign {
    /// Weight of the structural GCN view (vs. the attribute view).
    pub structure_weight: f32,
}

impl Default for GcnAlign {
    fn default() -> Self {
        Self {
            structure_weight: 0.9,
        }
    }
}

impl Approach for GcnAlign {
    fn name(&self) -> &'static str {
        "GCNAlign"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Mandatory, Optional, Mandatory, NotApplicable, NotApplicable)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        cfg.validate()?;
        let mut rng = ctx.driver_rng();
        let mut enc = GcnEncoder::new(pair, None, cfg.dim, false, false, true, &mut rng);

        // Attribute view (shared with JAPE's AC2Vec machinery).
        let attr_features = cfg.use_attributes.then(|| {
            let (map1, map2, num_attrs) = unify_attributes(&pair.kg1, &pair.kg2);
            let sets1 = entity_attr_sets(&pair.kg1, &map1);
            let sets2 = entity_attr_sets(&pair.kg2, &map2);
            let mut all = sets1.clone();
            all.extend(sets2.iter().cloned());
            let mut ac = AttrCorrelationModel::new(num_attrs.max(2), cfg.dim, &mut rng);
            ac.train(&all, 4, cfg.lr, &mut rng);
            let f1: Vec<f32> = sets1.iter().flat_map(|s| ac.entity_feature(s)).collect();
            let f2: Vec<f32> = sets2.iter().flat_map(|s| ac.entity_feature(s)).collect();
            (f1, f2)
        });

        if !cfg.use_relations {
            // Without relation triples a GCN has no graph: fall back to the
            // (untrained) features — the degenerate case of Table 8.
            return Ok(self.combine(enc.output(cfg), attr_features.as_ref(), cfg));
        }
        let mut hooks = GnnHooks {
            cfg,
            seeds: &split.train,
            model: enc,
            rng,
            finish: Some(Box::new(move |out| {
                self.combine(out, attr_features.as_ref(), cfg)
            })),
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

impl GcnAlign {
    fn combine(
        &self,
        structure: ApproachOutput,
        attr: Option<&AttrFeatures>,
        cfg: &RunConfig,
    ) -> ApproachOutput {
        let Some((f1, f2)) = attr else {
            return structure;
        };
        let sdim = structure.dim;
        let (ws, wa) = (self.structure_weight, 1.0 - self.structure_weight);
        ApproachOutput::new(
            sdim + cfg.dim,
            Metric::Manhattan,
            weighted_concat(&structure.emb1, sdim, ws, &[(f1, cfg.dim, wa)]),
            weighted_concat(&structure.emb2, sdim, ws, &[(f2, cfg.dim, wa)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_match_table9() {
        let g = GcnAlign::default();
        let r = g.requirements();
        assert_eq!(r.rel_triples, Req::Mandatory);
        assert_eq!(r.attr_triples, Req::Optional);
        assert_eq!(r.word_embeddings, Req::NotApplicable);
    }
}
