//! Shared graph-convolutional encoder for GCNAlign and RDGCN: a two-layer
//! GCN over the disjoint union of both KGs, trained full-batch with a
//! margin-based Manhattan calibration loss on the seed alignment.

use crate::common::{ApproachOutput, EpochStats, RunConfig};
use crate::engine::{EpochHooks, RunContext};
use openea_align::Metric;
use openea_autodiff::{Graph, SparseMatrix, Tensor};
use openea_core::{AlignedPair, KgPair};
use openea_runtime::rng::{Rng, SmallRng};

/// Builds the union-graph edge list over `n1 + n2` nodes. `relation_aware`
/// weights each edge by the inverse frequency of its relation (rare
/// relations are more discriminative — RDGCN's relation-awareness in spirit).
pub fn union_edges(pair: &KgPair, relation_aware: bool) -> (usize, Vec<(u32, u32, f32)>) {
    let n1 = pair.kg1.num_entities();
    let n = n1 + pair.kg2.num_entities();
    let mut freq = vec![0usize; pair.kg1.num_relations() + pair.kg2.num_relations()];
    if relation_aware {
        for t in pair.kg1.rel_triples() {
            freq[t.rel.idx()] += 1;
        }
        for t in pair.kg2.rel_triples() {
            freq[pair.kg1.num_relations() + t.rel.idx()] += 1;
        }
    }
    let weight = |r: usize| {
        if relation_aware {
            1.0 / (freq[r] as f32).sqrt().max(1.0)
        } else {
            1.0
        }
    };
    let mut edges = Vec::with_capacity(pair.kg1.num_rel_triples() + pair.kg2.num_rel_triples());
    for t in pair.kg1.rel_triples() {
        edges.push((t.head.0, t.tail.0, weight(t.rel.idx())));
    }
    let r1 = pair.kg1.num_relations();
    for t in pair.kg2.rel_triples() {
        edges.push((
            n1 as u32 + t.head.0,
            n1 as u32 + t.tail.0,
            weight(r1 + t.rel.idx()),
        ));
    }
    (n, edges)
}

/// The trainable two-layer (optionally gated/highway) GCN.
pub struct GcnEncoder {
    graph: Graph,
    adj: usize,
    pub x: Tensor,
    pub w1: Tensor,
    pub w2: Tensor,
    /// Highway gate weights (RDGCN); `None` for a plain GCN (GCNAlign).
    pub wg: Option<Tensor>,
    pub x_trainable: bool,
    n1: usize,
    n2: usize,
}

impl GcnEncoder {
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        pair: &KgPair,
        features: Option<Vec<f32>>,
        dim: usize,
        relation_aware: bool,
        highway: bool,
        x_trainable: bool,
        rng: &mut R,
    ) -> Self {
        let (n, edges) = union_edges(pair, relation_aware);
        let adj_matrix = SparseMatrix::gcn_normalized_weighted(n, &edges);
        let mut graph = Graph::new();
        let adj = graph.add_sparse(adj_matrix);
        let x = match features {
            Some(f) => {
                assert_eq!(f.len(), n * dim, "feature matrix shape");
                Tensor::from_vec(n, dim, f)
            }
            None => Tensor::xavier(n, dim, rng),
        };
        Self {
            graph,
            adj,
            x,
            w1: near_identity(dim, rng),
            w2: near_identity(dim, rng),
            wg: highway.then(|| Tensor::xavier(dim, dim, rng)),
            x_trainable,
            n1: pair.kg1.num_entities(),
            n2: pair.kg2.num_entities(),
        }
    }

    /// One full-batch training step on the margin calibration loss:
    /// `mean(relu(‖h₁ − h₂‖₁ − ‖h₁ − h₂ⁿᵉᵍ‖₁ + γ))` over seeds. Returns the
    /// loss value.
    pub fn step<R: Rng>(
        &mut self,
        seeds: &[AlignedPair],
        margin: f32,
        lr: f32,
        rng: &mut R,
    ) -> f32 {
        if seeds.is_empty() {
            return 0.0;
        }
        let n1 = self.n1 as u32;
        let idx1: Vec<u32> = seeds.iter().map(|&(a, _)| a.0).collect();
        let idx2: Vec<u32> = seeds.iter().map(|&(_, b)| n1 + b.0).collect();
        // Corrupt one side at random per pair (both KGs supply negatives).
        let neg2: Vec<u32> = seeds
            .iter()
            .map(|_| {
                if rng.gen_bool(0.5) {
                    n1 + rng.gen_range(0..self.n2 as u32)
                } else {
                    rng.gen_range(0..n1.max(1))
                }
            })
            .collect();

        self.graph.reset();
        let g = &mut self.graph;
        let x = g.leaf(self.x.clone());
        let w1 = g.leaf(self.w1.clone());
        let w2 = g.leaf(self.w2.clone());
        let wg = self.wg.as_ref().map(|t| g.leaf(t.clone()));
        let h = forward(g, self.adj, x, w1, w2, wg);

        let h1 = g.gather(h, idx1);
        let h2 = g.gather(h, idx2);
        let hn = g.gather(h, neg2);
        let pd = {
            let d = g.sub(h1, h2);
            let a = g.abs(d);
            g.sum_rows(a)
        };
        let nd = {
            let d = g.sub(h1, hn);
            let a = g.abs(d);
            g.sum_rows(a)
        };
        let diff = g.sub(pd, nd);
        let m = g.leaf(Tensor::from_vec(1, 1, vec![margin]));
        let arg = g.add_row(diff, m);
        let hinge = g.relu(arg);
        let loss = g.mean(hinge);
        let lv = g.value(loss).item();
        g.backward(loss);

        let apply = |param: &mut Tensor, grad: Tensor| {
            for (p, gg) in param.data.iter_mut().zip(&grad.data) {
                *p -= lr * gg;
            }
        };
        if self.x_trainable {
            let gx = g.grad(x);
            apply(&mut self.x, gx);
        }
        let gw1 = g.grad(w1);
        apply(&mut self.w1, gw1);
        let gw2 = g.grad(w2);
        apply(&mut self.w2, gw2);
        if let (Some(wg_var), Some(wg_t)) = (wg, self.wg.as_mut()) {
            let ggate = g.grad(wg_var);
            for (p, gg) in wg_t.data.iter_mut().zip(&ggate.data) {
                *p -= lr * gg;
            }
        }
        lv
    }

    /// The current node embeddings, split per KG.
    pub fn output(&mut self, _cfg: &RunConfig) -> ApproachOutput {
        self.graph.reset();
        let g = &mut self.graph;
        let x = g.leaf(self.x.clone());
        let w1 = g.leaf(self.w1.clone());
        let w2 = g.leaf(self.w2.clone());
        let wg = self.wg.as_ref().map(|t| g.leaf(t.clone()));
        let h = forward(g, self.adj, x, w1, w2, wg);
        split_normalized(g.value(h), self.n1)
    }
}

/// Splits union-graph node embeddings per KG and L2-normalizes every row:
/// Manhattan comparisons then measure direction, not magnitude (GNN outputs
/// have uninformative norms).
pub(crate) fn split_normalized(hv: &Tensor, n1: usize) -> ApproachOutput {
    let dim = hv.cols;
    let mut emb1 = hv.data[..n1 * dim].to_vec();
    let mut emb2 = hv.data[n1 * dim..].to_vec();
    for row in emb1.chunks_mut(dim).chain(emb2.chunks_mut(dim)) {
        openea_math::vecops::normalize(row);
    }
    ApproachOutput::new(dim, Metric::Manhattan, emb1, emb2)
}

/// A GNN encoder the shared [`GnnHooks`] can drive: full-batch calibration
/// steps on the seed alignment plus an inference-time output.
pub(crate) trait GnnModel {
    fn step(&mut self, seeds: &[AlignedPair], margin: f32, lr: f32, rng: &mut SmallRng) -> f32;
    fn output(&mut self, cfg: &RunConfig) -> ApproachOutput;
}

impl GnnModel for GcnEncoder {
    fn step(&mut self, seeds: &[AlignedPair], margin: f32, lr: f32, rng: &mut SmallRng) -> f32 {
        GcnEncoder::step(self, seeds, margin, lr, rng)
    }

    fn output(&mut self, cfg: &RunConfig) -> ApproachOutput {
        GcnEncoder::output(self, cfg)
    }
}

/// Engine hooks shared by the GNN family (GCNAlign, RDGCN, AliNet). GNN
/// training is full-batch: each epoch tick runs several steps at a higher
/// learning rate than the sparse SGD approaches. `finish` optionally
/// post-processes every checkpoint (GCNAlign's attribute-view combination).
pub(crate) struct GnnHooks<'a, M: GnnModel> {
    pub cfg: &'a RunConfig,
    pub seeds: &'a [AlignedPair],
    pub model: M,
    pub rng: SmallRng,
    pub finish: Option<Box<dyn Fn(ApproachOutput) -> ApproachOutput + 'a>>,
}

impl<M: GnnModel> EpochHooks for GnnHooks<'_, M> {
    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        let mut loss = 0.0f64;
        for _ in 0..8 {
            loss += self.model.step(
                self.seeds,
                self.cfg.margin,
                self.cfg.lr * 5.0,
                &mut self.rng,
            ) as f64;
        }
        EpochStats {
            mean_loss: (loss / 8.0) as f32,
            pairs: self.seeds.len() * 8,
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        let out = self.model.output(self.cfg);
        match &self.finish {
            Some(f) => f(out),
            None => out,
        }
    }
}

fn near_identity<R: Rng>(dim: usize, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(dim, dim);
    for i in 0..dim {
        t.data[i * dim + i] = 1.0;
    }
    for v in t.data.iter_mut() {
        *v += rng.gen_range(-0.05f32..0.05);
    }
    t
}

fn forward(
    g: &mut Graph,
    adj: usize,
    x: openea_autodiff::Var,
    w1: openea_autodiff::Var,
    w2: openea_autodiff::Var,
    wg: Option<openea_autodiff::Var>,
) -> openea_autodiff::Var {
    // Layer 1: H₁ = tanh(Â·X·W₁), optionally gated with the input
    // (highway): H₁' = g⊙X + (1−g)⊙H₁ with g = σ(X·W_g).
    let xw = g.matmul(x, w1);
    let prop = g.spmm(adj, xw);
    let h1 = g.tanh(prop);
    let h1 = match wg {
        Some(wg) => {
            let gate_in = g.matmul(x, wg);
            let gate = g.sigmoid(gate_in);
            let keep = g.mul(gate, x);
            let neg_gate = g.scale(gate, -1.0);
            let one_t = g.leaf(Tensor::from_vec(
                g.value(gate).rows,
                g.value(gate).cols,
                vec![1.0; g.value(gate).len()],
            ));
            let inv_gate = g.add(one_t, neg_gate);
            let new = g.mul(inv_gate, h1);
            g.add(keep, new)
        }
        None => h1,
    };
    // Layer 2: H₂ = Â·H₁·W₂ (linear output layer), gated with the input
    // again when a highway gate exists — RDGCN's name signal must survive
    // both propagation rounds.
    let hw = g.matmul(h1, w2);
    let h2 = g.spmm(adj, hw);
    match wg {
        Some(wg) => {
            let gate_in = g.matmul(x, wg);
            let gate = g.sigmoid(gate_in);
            let keep = g.mul(gate, x);
            let neg_gate = g.scale(gate, -1.0);
            let one_t = g.leaf(Tensor::from_vec(
                g.value(gate).rows,
                g.value(gate).cols,
                vec![1.0; g.value(gate).len()],
            ));
            let inv_gate = g.add(one_t, neg_gate);
            let new = g.mul(inv_gate, h2);
            g.add(keep, new)
        }
        None => h2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_core::KgBuilder;
    use openea_runtime::rng::SeedableRng;
    use openea_runtime::rng::SmallRng;

    fn pair() -> KgPair {
        let mut b1 = KgBuilder::new("a");
        b1.add_rel_triple("x1", "r", "y1");
        b1.add_rel_triple("y1", "r", "z1");
        b1.add_rel_triple("x1", "q", "z1");
        let mut b2 = KgBuilder::new("b");
        b2.add_rel_triple("x2", "s", "y2");
        b2.add_rel_triple("y2", "s", "z2");
        b2.add_rel_triple("x2", "p", "z2");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let al = ["x", "y", "z"]
            .iter()
            .map(|n| {
                (
                    kg1.entity_by_name(&format!("{n}1")).unwrap(),
                    kg2.entity_by_name(&format!("{n}2")).unwrap(),
                )
            })
            .collect();
        KgPair::new(kg1, kg2, al)
    }

    #[test]
    fn union_edges_offsets_kg2() {
        let p = pair();
        let (n, edges) = union_edges(&p, false);
        assert_eq!(n, 6);
        assert!(edges.iter().any(|&(a, _, _)| a >= 3), "kg2 edges offset");
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn relation_aware_weights_differ() {
        let p = pair();
        let (_, flat) = union_edges(&p, false);
        let (_, weighted) = union_edges(&p, true);
        assert!(flat.iter().all(|&(_, _, w)| w == 1.0));
        // The rare relations ("q"/"p", freq 1) weigh more than "r"/"s".
        let wmax = weighted.iter().map(|&(_, _, w)| w).fold(0.0f32, f32::max);
        let wmin = weighted.iter().map(|&(_, _, w)| w).fold(f32::MAX, f32::min);
        assert!(wmax > wmin);
    }

    /// A pair of 5-node path graphs (asymmetric enough that the GCN cannot
    /// collapse them by graph automorphism, unlike a triangle).
    fn path_pair() -> KgPair {
        let mut b1 = KgBuilder::new("a");
        let mut b2 = KgBuilder::new("b");
        for i in 0..4 {
            b1.add_rel_triple(&format!("e{i}1"), "r", &format!("e{}1", i + 1));
            b2.add_rel_triple(&format!("e{i}2"), "s", &format!("e{}2", i + 1));
        }
        b1.add_rel_triple("e01", "q", "e21");
        b2.add_rel_triple("e02", "p", "e22");
        let kg1 = b1.build();
        let kg2 = b2.build();
        let al = (0..5)
            .map(|i| {
                (
                    kg1.entity_by_name(&format!("e{i}1")).unwrap(),
                    kg2.entity_by_name(&format!("e{i}2")).unwrap(),
                )
            })
            .collect();
        KgPair::new(kg1, kg2, al)
    }

    #[test]
    fn gcn_training_reduces_loss_and_aligns_seeds() {
        let p = path_pair();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut enc = GcnEncoder::new(&p, None, 8, false, false, true, &mut rng);
        let seeds: Vec<_> = p.alignment[..3].to_vec();
        let first = enc.step(&seeds, 1.0, 0.0, &mut rng); // lr 0: measure only
        let mut last = first;
        for _ in 0..60 {
            last = enc.step(&seeds, 1.0, 0.05, &mut rng);
        }
        assert!(last <= first, "loss should not increase: {first} -> {last}");
        let cfg = RunConfig::default();
        let out = enc.output(&cfg);
        // A trained seed pair ends up closer (Manhattan) than a cross pair
        // with the far end of the other path.
        let d_pos =
            openea_math::vecops::manhattan(out.vec1(p.alignment[0].0), out.vec2(p.alignment[0].1));
        let d_neg =
            openea_math::vecops::manhattan(out.vec1(p.alignment[0].0), out.vec2(p.alignment[4].1));
        assert!(d_pos < d_neg, "{d_pos} vs {d_neg}");
    }

    #[test]
    fn highway_gate_is_trainable() {
        let p = pair();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut enc = GcnEncoder::new(&p, None, 8, true, true, false, &mut rng);
        let before = enc.wg.as_ref().unwrap().data.clone();
        for _ in 0..5 {
            enc.step(&p.alignment, 1.0, 0.1, &mut rng);
        }
        assert_ne!(&before, &enc.wg.as_ref().unwrap().data);
        // x is frozen when not trainable.
        let x0 = enc.x.data.clone();
        enc.step(&p.alignment, 1.0, 0.1, &mut rng);
        assert_eq!(x0, enc.x.data);
    }
}
