//! Exploratory: **unsupervised entity alignment** (paper Sect. 7.2, first
//! future direction).
//!
//! The paper observes that no surveyed approach works without seed
//! alignment and proposes distilling distant supervision from auxiliary
//! resources. This module implements that recipe: IMUSE's string-matching
//! preprocessing produces pseudo-seeds from literal overlap alone, a
//! BootEA-style embedding is trained on them, and conflict-edited
//! self-training grows the alignment — zero gold seeds consumed.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    calibrate, train_epoch_batched, ApproachOutput, Combination, EpochStats, RunConfig,
    TrainOptions, UnifiedSpace,
};
use crate::engine::{run_driver, EpochHooks, RunContext};
use crate::imuse::string_match_seeds;
use openea_align::Metric;
use openea_core::{EntityId, KgPair};
use openea_math::negsamp::UniformSampler;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::RngCore;
use openea_runtime::rng::SmallRng;
use std::collections::HashSet;

/// Configuration of the unsupervised pipeline.
#[derive(Clone, Copy, Debug)]
pub struct UnsupervisedConfig {
    /// Minimum rarity-weighted literal overlap for a pseudo-seed.
    pub string_threshold: f32,
    /// Self-training rounds after the initial fit.
    pub boot_rounds: usize,
    /// Epochs between rounds.
    pub epochs_per_round: usize,
    /// Cosine acceptance threshold for boot proposals.
    pub boot_threshold: f32,
}

impl Default for UnsupervisedConfig {
    fn default() -> Self {
        Self {
            string_threshold: 1.5,
            boot_rounds: 4,
            epochs_per_round: 20,
            boot_threshold: 0.8,
        }
    }
}

/// Result of an unsupervised run.
pub struct UnsupervisedOutcome {
    pub output: ApproachOutput,
    /// The literal-derived pseudo-seeds the run started from.
    pub pseudo_seeds: Vec<(EntityId, EntityId)>,
    /// The final predicted alignment (pseudo-seeds + bootstrapped pairs).
    pub predicted: Vec<(EntityId, EntityId)>,
}

/// Runs the unsupervised pipeline. The pair's gold alignment is never read.
pub fn align_unsupervised(
    pair: &KgPair,
    ucfg: UnsupervisedConfig,
    cfg: &RunConfig,
) -> UnsupervisedOutcome {
    let ctx = RunContext::new(cfg);
    let mut rng = ctx.driver_rng();
    let pseudo_seeds = string_match_seeds(&pair.kg1, &pair.kg2, ucfg.string_threshold);

    let space = UnifiedSpace::build(pair, &pseudo_seeds, Combination::Sharing);
    let model = TransE::new(
        space.num_entities,
        space.num_relations.max(1),
        cfg.dim,
        cfg.margin,
        &mut rng,
    );
    let sampler = UniformSampler {
        num_entities: space.num_entities.max(1) as u32,
    };

    let opts = cfg.train_options(space.triples.len());
    let mut hooks = Hooks {
        pair,
        ucfg,
        cfg,
        space,
        model,
        sampler,
        taken1: pseudo_seeds.iter().map(|&(a, _)| a).collect(),
        taken2: pseudo_seeds.iter().map(|&(_, b)| b).collect(),
        boot_pairs: Vec::new(),
        opts,
        rng,
    };

    // One flat epoch sequence: `epochs_per_round` epochs per round, with a
    // self-training proposal at every round boundary (`before_epoch`). No
    // validation split exists, so the context carries no validation pairs
    // and the engine never early-stops.
    let ecfg = RunConfig {
        max_epochs: (ucfg.boot_rounds + 1) * ucfg.epochs_per_round,
        ..cfg.clone()
    };
    let output =
        run_driver("unsupervised", &mut hooks, &ctx, &ecfg).expect("valid unsupervised run config");
    let mut predicted = pseudo_seeds.clone();
    predicted.extend(hooks.boot_pairs);
    UnsupervisedOutcome {
        output,
        pseudo_seeds,
        predicted,
    }
}

struct Hooks<'a> {
    pair: &'a KgPair,
    ucfg: UnsupervisedConfig,
    cfg: &'a RunConfig,
    space: UnifiedSpace,
    model: TransE,
    sampler: UniformSampler,
    taken1: HashSet<EntityId>,
    taken2: HashSet<EntityId>,
    boot_pairs: Vec<(EntityId, EntityId)>,
    opts: TrainOptions,
    rng: SmallRng,
}

impl EpochHooks for Hooks<'_> {
    fn before_epoch(&mut self, epoch: usize, _ctx: &RunContext<'_>) {
        if epoch == 0
            || self.ucfg.epochs_per_round == 0
            || !epoch.is_multiple_of(self.ucfg.epochs_per_round)
        {
            return;
        }
        // Round boundary: propose new pairs from the current embeddings
        // (conflict-edited, never touching entities already aligned).
        let out = extract(&self.space, &self.model, self.cfg);
        let cand1 = unaligned_entities(self.pair.kg1.num_entities(), &self.taken1);
        let cand2 = unaligned_entities(self.pair.kg2.num_entities(), &self.taken2);
        let new_pairs = propose_alignment(
            &out,
            &cand1,
            &cand2,
            self.ucfg.boot_threshold,
            true,
            self.cfg.threads,
        );
        for &(a, b) in &new_pairs {
            self.taken1.insert(a);
            self.taken2.insert(b);
        }
        self.boot_pairs.extend(new_pairs);
    }

    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        train_epoch_batched(
            &mut self.model,
            &self.space.triples,
            &self.sampler,
            &self.opts,
            self.rng.next_u64(),
        )
        .expect("valid train options")
    }

    fn after_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {
        let uids: Vec<(u32, u32)> = self
            .boot_pairs
            .iter()
            .map(|&(a, b)| (self.space.uid1(a), self.space.uid2(b)))
            .collect();
        calibrate(&mut self.model.entities, &uids, self.cfg.lr);
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        extract(&self.space, &self.model, self.cfg)
    }
}

fn extract(space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
    let (emb1, emb2) = space.extract(model.entities());
    ApproachOutput::new(cfg.dim, Metric::Cosine, emb1, emb2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_align::precision_recall_f1;

    #[test]
    fn unsupervised_alignment_beats_chance_without_gold_seeds() {
        let pair = openea_synth::PresetConfig::new(openea_synth::DatasetFamily::DY, 300, false, 88)
            .generate();
        let cfg = RunConfig {
            dim: 16,
            threads: 2,
            ..RunConfig::default()
        };
        let outcome = align_unsupervised(&pair, UnsupervisedConfig::default(), &cfg);
        assert!(
            !outcome.pseudo_seeds.is_empty(),
            "literal overlap must yield pseudo-seeds"
        );
        let gold: HashSet<(u32, u32)> = pair.alignment.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let raw: Vec<(u32, u32)> = outcome.predicted.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let prf = precision_recall_f1(&raw, &gold);
        assert!(prf.precision > 0.5, "precision {}", prf.precision);
        assert!(prf.recall > 0.2, "recall {}", prf.recall);
    }

    #[test]
    fn pseudo_seeds_respect_one_to_one() {
        let pair = openea_synth::PresetConfig::new(openea_synth::DatasetFamily::DY, 200, false, 89)
            .generate();
        let cfg = RunConfig {
            dim: 16,
            threads: 2,
            ..RunConfig::default()
        };
        let ucfg = UnsupervisedConfig {
            boot_rounds: 1,
            epochs_per_round: 5,
            ..UnsupervisedConfig::default()
        };
        let outcome = align_unsupervised(&pair, ucfg, &cfg);
        let mut s1 = HashSet::new();
        let mut s2 = HashSet::new();
        for (a, b) in &outcome.predicted {
            assert!(s1.insert(*a), "duplicate source");
            assert!(s2.insert(*b), "duplicate target");
        }
    }
}
