//! Exploratory: **unsupervised entity alignment** (paper Sect. 7.2, first
//! future direction).
//!
//! The paper observes that no surveyed approach works without seed
//! alignment and proposes distilling distant supervision from auxiliary
//! resources. This module implements that recipe: IMUSE's string-matching
//! preprocessing produces pseudo-seeds from literal overlap alone, a
//! BootEA-style embedding is trained on them, and conflict-edited
//! self-training grows the alignment — zero gold seeds consumed.

use crate::boot::{propose_alignment, unaligned_entities};
use crate::common::{
    calibrate, train_epoch_batched, ApproachOutput, Combination, RunConfig, TraceRecorder,
    TrainTrace, UnifiedSpace,
};
use crate::imuse::string_match_seeds;
use openea_align::Metric;
use openea_core::{EntityId, KgPair};
use openea_math::negsamp::UniformSampler;
use openea_models::{RelationModel, TransE};
use openea_runtime::rng::SmallRng;
use openea_runtime::rng::{RngCore, SeedableRng};
use std::collections::HashSet;

/// Configuration of the unsupervised pipeline.
#[derive(Clone, Copy, Debug)]
pub struct UnsupervisedConfig {
    /// Minimum rarity-weighted literal overlap for a pseudo-seed.
    pub string_threshold: f32,
    /// Self-training rounds after the initial fit.
    pub boot_rounds: usize,
    /// Epochs between rounds.
    pub epochs_per_round: usize,
    /// Cosine acceptance threshold for boot proposals.
    pub boot_threshold: f32,
}

impl Default for UnsupervisedConfig {
    fn default() -> Self {
        Self {
            string_threshold: 1.5,
            boot_rounds: 4,
            epochs_per_round: 20,
            boot_threshold: 0.8,
        }
    }
}

/// Result of an unsupervised run.
pub struct UnsupervisedOutcome {
    pub output: ApproachOutput,
    /// The literal-derived pseudo-seeds the run started from.
    pub pseudo_seeds: Vec<(EntityId, EntityId)>,
    /// The final predicted alignment (pseudo-seeds + bootstrapped pairs).
    pub predicted: Vec<(EntityId, EntityId)>,
}

/// Runs the unsupervised pipeline. The pair's gold alignment is never read.
pub fn align_unsupervised(
    pair: &KgPair,
    ucfg: UnsupervisedConfig,
    cfg: &RunConfig,
) -> UnsupervisedOutcome {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let pseudo_seeds = string_match_seeds(&pair.kg1, &pair.kg2, ucfg.string_threshold);

    let space = UnifiedSpace::build(pair, &pseudo_seeds, Combination::Sharing);
    let mut model = TransE::new(
        space.num_entities,
        space.num_relations.max(1),
        cfg.dim,
        cfg.margin,
        &mut rng,
    );
    let sampler = UniformSampler {
        num_entities: space.num_entities.max(1) as u32,
    };

    let mut taken1: HashSet<EntityId> = pseudo_seeds.iter().map(|&(a, _)| a).collect();
    let mut taken2: HashSet<EntityId> = pseudo_seeds.iter().map(|&(_, b)| b).collect();
    let mut boot_pairs: Vec<(EntityId, EntityId)> = Vec::new();

    let opts = cfg.train_options(space.triples.len());
    let mut rec = TraceRecorder::new("unsupervised");
    let mut epoch = 0;
    for round in 0..=ucfg.boot_rounds {
        for _ in 0..ucfg.epochs_per_round {
            rec.begin_epoch();
            let stats =
                train_epoch_batched(&mut model, &space.triples, &sampler, &opts, rng.next_u64())
                    .expect("valid train options");
            let uids: Vec<(u32, u32)> = boot_pairs
                .iter()
                .map(|&(a, b)| (space.uid1(a), space.uid2(b)))
                .collect();
            calibrate(&mut model.entities, &uids, cfg.lr);
            rec.end_epoch(epoch, stats);
            epoch += 1;
        }
        if round == ucfg.boot_rounds {
            break;
        }
        let out = extract(&space, &model, cfg);
        let cand1 = unaligned_entities(pair.kg1.num_entities(), &taken1);
        let cand2 = unaligned_entities(pair.kg2.num_entities(), &taken2);
        let new_pairs =
            propose_alignment(&out, &cand1, &cand2, ucfg.boot_threshold, true, cfg.threads);
        for &(a, b) in &new_pairs {
            taken1.insert(a);
            taken2.insert(b);
        }
        boot_pairs.extend(new_pairs);
    }

    let mut output = extract(&space, &model, cfg);
    output.trace = rec.finish();
    let mut predicted = pseudo_seeds.clone();
    predicted.extend(boot_pairs);
    UnsupervisedOutcome {
        output,
        pseudo_seeds,
        predicted,
    }
}

fn extract(space: &UnifiedSpace, model: &TransE, cfg: &RunConfig) -> ApproachOutput {
    let (emb1, emb2) = space.extract(model.entities());
    ApproachOutput {
        dim: cfg.dim,
        metric: Metric::Cosine,
        emb1,
        emb2,
        augmentation: Vec::new(),
        trace: TrainTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_align::precision_recall_f1;

    #[test]
    fn unsupervised_alignment_beats_chance_without_gold_seeds() {
        let pair = openea_synth::PresetConfig::new(openea_synth::DatasetFamily::DY, 300, false, 88)
            .generate();
        let cfg = RunConfig {
            dim: 16,
            threads: 2,
            ..RunConfig::default()
        };
        let outcome = align_unsupervised(&pair, UnsupervisedConfig::default(), &cfg);
        assert!(
            !outcome.pseudo_seeds.is_empty(),
            "literal overlap must yield pseudo-seeds"
        );
        let gold: HashSet<(u32, u32)> = pair.alignment.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let raw: Vec<(u32, u32)> = outcome.predicted.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let prf = precision_recall_f1(&raw, &gold);
        assert!(prf.precision > 0.5, "precision {}", prf.precision);
        assert!(prf.recall > 0.2, "recall {}", prf.recall);
    }

    #[test]
    fn pseudo_seeds_respect_one_to_one() {
        let pair = openea_synth::PresetConfig::new(openea_synth::DatasetFamily::DY, 200, false, 89)
            .generate();
        let cfg = RunConfig {
            dim: 16,
            threads: 2,
            ..RunConfig::default()
        };
        let ucfg = UnsupervisedConfig {
            boot_rounds: 1,
            epochs_per_round: 5,
            ..UnsupervisedConfig::default()
        };
        let outcome = align_unsupervised(&pair, ucfg, &cfg);
        let mut s1 = HashSet::new();
        let mut s2 = HashSet::new();
        for (a, b) in &outcome.predicted {
            assert!(s1.insert(*a), "duplicate source");
            assert!(s2.insert(*b), "duplicate target");
        }
    }
}
