//! RSN4EA \[24\]: recurrent skipping networks for entity alignment. Random
//! walks over the unified (parameter-shared) KG produce entity–relation
//! sequences; a recurrent network predicts each next entity, with a *skip
//! connection from the subject entity* (the "skipping" mechanism that lets
//! the output depend directly on the head of the current hop rather than
//! only on the blended hidden state). Cosine metric, supervised sharing.

use crate::common::{
    Approach, ApproachOutput, Combination, EpochStats, Req, Requirements, RunConfig, TrainError,
    UnifiedSpace,
};
use crate::engine::{run_driver, EpochHooks, RunContext};
use openea_align::Metric;
use openea_autodiff::{Graph, Tensor};
use openea_core::{FoldSplit, KgPair};
use openea_math::{EmbeddingTable, Initializer};
use openea_runtime::rng::Rng;
use openea_runtime::rng::SmallRng;

/// One training walk: entity ids and the relations between them.
#[derive(Clone, Debug)]
struct Walk {
    entities: Vec<u32>,
    relations: Vec<u32>,
}

/// Samples `count` random walks of `len` hops over the triple list,
/// following forward edges and inverse edges (inverse relations get ids
/// offset by `num_relations`).
fn sample_walks<R: Rng>(
    triples: &[(u32, u32, u32)],
    num_entities: usize,
    num_relations: u32,
    len: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Walk> {
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_entities];
    for &(h, r, t) in triples {
        adj[h as usize].push((r, t));
        adj[t as usize].push((num_relations + r, h));
    }
    let starts: Vec<u32> = (0..num_entities as u32)
        .filter(|&e| !adj[e as usize].is_empty())
        .collect();
    if starts.is_empty() {
        return Vec::new();
    }
    let mut walks = Vec::with_capacity(count);
    for _ in 0..count {
        let mut cur = starts[rng.gen_range(0..starts.len())];
        let mut entities = vec![cur];
        let mut relations = Vec::with_capacity(len);
        for _ in 0..len {
            let edges = &adj[cur as usize];
            if edges.is_empty() {
                break;
            }
            let (r, t) = edges[rng.gen_range(0..edges.len())];
            relations.push(r);
            entities.push(t);
            cur = t;
        }
        if relations.is_empty() {
            continue;
        }
        walks.push(Walk {
            entities,
            relations,
        });
    }
    walks
}

/// RSN4EA.
pub struct Rsn4Ea {
    pub walk_len: usize,
    /// Walks sampled per entity per epoch.
    pub walks_per_entity: f32,
    /// Negative candidates per prediction.
    pub candidates: usize,
}

impl Default for Rsn4Ea {
    fn default() -> Self {
        Self {
            walk_len: 5,
            walks_per_entity: 3.0,
            candidates: 12,
        }
    }
}

struct RsnParams {
    elements: EmbeddingTable,
    wh: Tensor,
    wx: Tensor,
    w1: Tensor,
    w2: Tensor,
}

impl Approach for Rsn4Ea {
    fn name(&self) -> &'static str {
        "RSN4EA"
    }

    fn requirements(&self) -> Requirements {
        use Req::*;
        Requirements::of(Mandatory, NotApplicable, Mandatory, Optional, NotApplicable)
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let mut rng = ctx.driver_rng();
        let space = UnifiedSpace::build(pair, &split.train, Combination::Sharing);
        // Element table: entities then 2·relations (forward + inverse).
        let num_elements = space.num_entities + 2 * space.num_relations;
        let params = RsnParams {
            elements: EmbeddingTable::new(
                num_elements.max(1),
                cfg.dim,
                Initializer::Unit,
                &mut rng,
            ),
            wh: Tensor::xavier(cfg.dim, cfg.dim, &mut rng),
            wx: Tensor::xavier(cfg.dim, cfg.dim, &mut rng),
            w1: Tensor::xavier(cfg.dim, cfg.dim, &mut rng),
            w2: Tensor::xavier(cfg.dim, cfg.dim, &mut rng),
        };

        let walks_per_epoch = ((space.num_entities as f32 * self.walks_per_entity) as usize).max(8);
        let mut hooks = Hooks {
            approach: self,
            cfg,
            space,
            params,
            walks_per_epoch,
            rng,
        };
        run_driver(self.name(), &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

struct Hooks<'a> {
    approach: &'a Rsn4Ea,
    cfg: &'a RunConfig,
    space: UnifiedSpace,
    params: RsnParams,
    walks_per_epoch: usize,
    rng: SmallRng,
}

impl EpochHooks for Hooks<'_> {
    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        if !self.cfg.use_relations {
            return EpochStats::default();
        }
        let walks = sample_walks(
            &self.space.triples,
            self.space.num_entities,
            self.space.num_relations as u32,
            self.approach.walk_len,
            self.walks_per_epoch,
            &mut self.rng,
        );
        let mut loss = 0.0f64;
        let mut pairs = 0usize;
        for walk in &walks {
            let l = self.approach.train_walk(
                &mut self.params,
                &self.space,
                walk,
                self.cfg,
                &mut self.rng,
            );
            // Per-walk loss is the mean over its predictions; weight by
            // prediction count so short walks don't dominate.
            loss += l as f64 * walk.relations.len() as f64;
            pairs += walk.relations.len();
        }
        self.params.elements.clip_rows_to_unit_ball();
        EpochStats {
            mean_loss: if pairs == 0 {
                0.0
            } else {
                (loss / pairs as f64) as f32
            },
            pairs,
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        self.approach.output(&self.space, &self.params, self.cfg)
    }
}

impl Rsn4Ea {
    /// Builds the recurrent tape for one walk, applies one SGD step and
    /// returns the walk's mean prediction loss.
    fn train_walk(
        &self,
        params: &mut RsnParams,
        space: &UnifiedSpace,
        walk: &Walk,
        cfg: &RunConfig,
        rng: &mut SmallRng,
    ) -> f32 {
        let dim = cfg.dim;
        let ne = space.num_entities as u32;
        // Local element set: walk entities/relations plus sampled candidates.
        let mut local: Vec<u32> = Vec::new();
        let mut index_of = std::collections::HashMap::new();
        let local_id = |ids: &mut Vec<u32>,
                        map: &mut std::collections::HashMap<u32, u32>,
                        global: u32|
         -> u32 {
            *map.entry(global).or_insert_with(|| {
                ids.push(global);
                (ids.len() - 1) as u32
            })
        };
        let ent_rows: Vec<u32> = walk
            .entities
            .iter()
            .map(|&e| local_id(&mut local, &mut index_of, e))
            .collect();
        let rel_rows: Vec<u32> = walk
            .relations
            .iter()
            .map(|&r| local_id(&mut local, &mut index_of, ne + r))
            .collect();
        // Candidate sets per prediction step: the true next entity first.
        let mut cand_rows: Vec<Vec<u32>> = Vec::with_capacity(walk.relations.len());
        for step in 0..walk.relations.len() {
            let mut c = vec![ent_rows[step + 1]];
            for _ in 0..self.candidates {
                let neg = rng.gen_range(0..ne);
                c.push(local_id(&mut local, &mut index_of, neg));
            }
            cand_rows.push(c);
        }

        // Local embedding leaf.
        let mut buf = Vec::with_capacity(local.len() * dim);
        for &gid in &local {
            buf.extend_from_slice(params.elements.row(gid as usize));
        }
        let mut g = Graph::new();
        let emb = g.leaf(Tensor::from_vec(local.len(), dim, buf));
        let wh = g.leaf(params.wh.clone());
        let wx = g.leaf(params.wx.clone());
        let w1 = g.leaf(params.w1.clone());
        let w2 = g.leaf(params.w2.clone());

        // Recurrence over the walk; predict each next entity.
        let mut h = g.gather(emb, vec![ent_rows[0]]); // h₀ = subject embedding
        let mut losses = Vec::new();
        for step in 0..walk.relations.len() {
            let subject = g.gather(emb, vec![ent_rows[step]]);
            let rel = g.gather(emb, vec![rel_rows[step]]);
            // h ← tanh(h·W_h + x·W_x) consuming the relation.
            let hh = g.matmul(h, wh);
            let xx = g.matmul(rel, wx);
            let s = g.add(hh, xx);
            h = g.tanh(s);
            // Skipping: o = tanh(h·W₁ + subject·W₂).
            let o1 = g.matmul(h, w1);
            let o2 = g.matmul(subject, w2);
            let o_sum = g.add(o1, o2);
            let o = g.tanh(o_sum);
            // Scores against the candidate embeddings: o · candᵀ.
            let cands = g.gather(emb, cand_rows[step].clone());
            let cands_dim = g.value(cands).rows;
            let _ = cands_dim;
            // [1,d]·[d,m]: transpose candidates via matmul trick — build
            // scores one a time is wasteful; instead compute o·candᵀ by
            // matmul(cands, oᵀ) and reshape: [m,d]·[d,1] = [m,1].
            let o_t = g.reshape(o, dim, 1);
            let scores_col = g.matmul(cands, o_t); // [m, 1]
            let scores_raw = g.reshape(scores_col, 1, cand_rows[step].len());
            // Temperature: unit-ball embeddings cap dot products at 1, so
            // sharpen the softmax to get usable gradients.
            let scores = g.scale(scores_raw, 4.0);
            let loss = g.softmax_cross_entropy(scores, vec![0]);
            losses.push(loss);
            // Consume the entity into the hidden state.
            let next = g.gather(emb, vec![ent_rows[step + 1]]);
            let hh2 = g.matmul(h, wh);
            let xx2 = g.matmul(next, wx);
            let s2 = g.add(hh2, xx2);
            h = g.tanh(s2);
        }
        // Total loss = mean of the per-step losses.
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = g.add(total, l);
        }
        let scale = 1.0 / losses.len() as f32;
        let loss = g.scale(total, scale);
        let loss_value = g.value(loss).item();
        g.backward(loss);

        // Apply gradients.
        let gemb = g.grad(emb);
        for (local_row, &gid) in local.iter().enumerate() {
            params
                .elements
                .sgd_row(gid as usize, gemb.row(local_row), cfg.lr);
        }
        for (param, var) in [
            (&mut params.wh, wh),
            (&mut params.wx, wx),
            (&mut params.w1, w1),
            (&mut params.w2, w2),
        ] {
            let grad = g.grad(var);
            for (p, gg) in param.data.iter_mut().zip(&grad.data) {
                *p -= cfg.lr * gg;
            }
        }
        loss_value
    }

    fn output(&self, space: &UnifiedSpace, params: &RsnParams, cfg: &RunConfig) -> ApproachOutput {
        let (emb1, emb2) = space.extract(&params.elements);
        // extract() reads rows 0..n from the element table; entity rows come
        // first, so the relation tail is never touched.
        ApproachOutput::new(cfg.dim, Metric::Cosine, emb1, emb2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_runtime::rng::SeedableRng;

    #[test]
    fn walks_follow_edges_in_both_directions() {
        let triples = vec![(0u32, 0u32, 1u32), (1, 1, 2)];
        let mut rng = SmallRng::seed_from_u64(0);
        let walks = sample_walks(&triples, 3, 2, 4, 50, &mut rng);
        assert!(!walks.is_empty());
        for w in &walks {
            assert_eq!(w.entities.len(), w.relations.len() + 1);
            for (i, &r) in w.relations.iter().enumerate() {
                let (h, t) = (w.entities[i], w.entities[i + 1]);
                let forward = triples
                    .iter()
                    .any(|&(a, rr, b)| a == h && b == t && rr == r);
                let inverse = r >= 2
                    && triples
                        .iter()
                        .any(|&(a, rr, b)| a == t && b == h && rr == r - 2);
                assert!(forward || inverse, "invalid hop {h} -{r}-> {t}");
            }
        }
    }

    #[test]
    fn walks_skip_isolated_entities() {
        let triples = vec![(0u32, 0u32, 1u32)];
        let mut rng = SmallRng::seed_from_u64(1);
        let walks = sample_walks(&triples, 5, 1, 3, 20, &mut rng);
        for w in &walks {
            assert!(w.entities.iter().all(|&e| e <= 1));
        }
    }

    #[test]
    fn empty_graph_yields_no_walks() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(sample_walks(&[], 4, 1, 3, 10, &mut rng).is_empty());
    }
}
