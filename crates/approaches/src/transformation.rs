//! The *embedding-space transformation* interaction mode (MTransE, SEA,
//! KDCoE's relation view, and the Figure-11 harness for unexplored models):
//! each KG is embedded in its own space and a linear map `M` is trained so
//! that `M·e₁ ≈ e₂` on the seed alignment.

use crate::common::{
    train_epoch_batched, Approach, ApproachOutput, EpochStats, Requirements, RunConfig, TrainError,
    TrainOptions,
};
use crate::engine::{run_driver, EpochHooks, RunContext, WarmStart};
use openea_align::Metric;
use openea_core::{AlignedPair, FoldSplit, KgPair};
use openea_math::negsamp::{RawTriple, UniformSampler};
use openea_math::Matrix;
use openea_models::RelationModel;
use openea_runtime::rng::{Rng, RngCore, SmallRng};

/// Builds a fresh relation model: `(num_entities, num_relations, dim, seed)`.
pub type ModelFactory = dyn Fn(usize, usize, usize, u64) -> Box<dyn RelationModel> + Sync;

/// Raw triples of one KG in its own id space.
pub fn kg_triples(kg: &openea_core::KnowledgeGraph) -> Vec<RawTriple> {
    kg.rel_triples()
        .iter()
        .map(|t| (t.head.0, t.rel.0, t.tail.0))
        .collect()
}

/// The transformation harness. `cycle_weight > 0` adds SEA-style cycle
/// consistency (`M̄·M·e₁ ≈ e₁`) over unlabeled entities, which regularizes
/// the map using non-seed data (a simple semi-supervised signal).
pub struct TransformationHarness<'f> {
    pub factory: &'f ModelFactory,
    /// Label stamped on the emitted `TrainTrace` (the approach's name).
    pub label: &'static str,
    pub metric: Metric,
    pub cycle_weight: f32,
    /// Project `M` onto the nearest orthogonal matrix after each epoch —
    /// MTransE's orthogonality variant, via orthogonal Procrustes machinery.
    pub orthogonal: bool,
    /// Whether the seed loss also updates the seed *entity* embeddings (the
    /// joint objective). Multiplicative models are brittle under these
    /// direct pulls; map-only training preserves their relational geometry.
    pub update_entities: bool,
    /// Table 9 column of the approach wrapping this harness.
    pub requirements: Requirements,
}

impl Approach for TransformationHarness<'_> {
    fn name(&self) -> &'static str {
        self.label
    }

    fn requirements(&self) -> Requirements {
        self.requirements
    }

    fn try_run(
        &self,
        pair: &KgPair,
        split: &FoldSplit,
        cfg: &RunConfig,
        ctx: &RunContext<'_>,
    ) -> Result<ApproachOutput, TrainError> {
        let mut rng = ctx.driver_rng();
        let m1 = (self.factory)(
            pair.kg1.num_entities(),
            pair.kg1.num_relations().max(1),
            cfg.dim,
            ctx.model_seed(1),
        );
        let m2 = (self.factory)(
            pair.kg2.num_entities(),
            pair.kg2.num_relations().max(1),
            cfg.dim,
            ctx.model_seed(2),
        );
        let t1 = kg_triples(&pair.kg1);
        let t2 = kg_triples(&pair.kg2);

        // The transformation matrix, near-identity at start.
        let mut map = Matrix::identity(cfg.dim);
        for v in map.data_mut() {
            *v += rng.gen_range(-0.02f32..0.02);
        }

        let opts1 = cfg.train_options(t1.len());
        let opts2 = cfg.train_options(t2.len());
        let mut hooks = Hooks {
            harness: self,
            cfg,
            seeds: &split.train,
            m1,
            m2,
            map,
            back: Matrix::identity(cfg.dim),
            s1: UniformSampler {
                num_entities: pair.kg1.num_entities().max(1) as u32,
            },
            s2: UniformSampler {
                num_entities: pair.kg2.num_entities().max(1) as u32,
            },
            t1,
            t2,
            opts1,
            opts2,
            rng,
        };
        run_driver(self.label, &mut hooks, &ctx.for_valid(&split.valid), cfg)
    }
}

/// Engine hooks: per-KG relation-model epochs, then the joint seed step,
/// optional cycle consistency and optional orthogonal projection.
struct Hooks<'a, 'f> {
    harness: &'a TransformationHarness<'f>,
    cfg: &'a RunConfig,
    seeds: &'a [AlignedPair],
    m1: Box<dyn RelationModel>,
    m2: Box<dyn RelationModel>,
    map: Matrix,
    back: Matrix,
    s1: UniformSampler,
    s2: UniformSampler,
    t1: Vec<RawTriple>,
    t2: Vec<RawTriple>,
    opts1: TrainOptions,
    opts2: TrainOptions,
    rng: SmallRng,
}

impl EpochHooks for Hooks<'_, '_> {
    fn train_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) -> EpochStats {
        if !self.cfg.use_relations {
            return EpochStats::default();
        }
        let a = train_epoch_batched(
            self.m1.as_mut(),
            &self.t1,
            &self.s1,
            &self.opts1,
            self.rng.next_u64(),
        )
        .expect("valid train options");
        let b = train_epoch_batched(
            self.m2.as_mut(),
            &self.t2,
            &self.s2,
            &self.opts2,
            self.rng.next_u64(),
        )
        .expect("valid train options");
        EpochStats::merged(&[a, b])
    }

    fn after_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {
        seed_step(
            self.m1.as_mut(),
            self.m2.as_mut(),
            &mut self.map,
            self.seeds,
            self.cfg,
            self.harness.update_entities,
        );
        if self.harness.cycle_weight > 0.0 {
            self.harness.cycle_step(
                self.m1.as_mut(),
                &mut self.map,
                &mut self.back,
                self.cfg,
                &mut self.rng,
            );
        }
        if self.harness.orthogonal {
            self.map = openea_math::nearest_orthogonal(&self.map);
        }
    }

    fn checkpoint(&mut self, _ctx: &RunContext<'_>) -> ApproachOutput {
        mapped_output(
            self.m1.as_ref(),
            self.m2.as_ref(),
            &self.map,
            self.cfg,
            self.harness.metric,
        )
    }

    fn warm_start(&mut self, warm: &WarmStart<'_>, ctx: &RunContext<'_>) -> bool {
        // The snapshot stores the *mapped* KG1 output (M·e₁) against raw
        // KG2 rows, so absorption folds the parent's map into e₁: load the
        // mapped rows directly and reset `M` (and the cycle back-map) to
        // the exact identity. A zero-epoch checkpoint then reproduces the
        // parent's bits. New entities seed from the reserved warm stream,
        // KG2 keys offset into a disjoint range.
        let seed = ctx.seed;
        let (rows1, rows2) = (warm.rows1(), warm.rows2());
        if !self.m1.init_from(
            warm.dim,
            warm.emb1,
            &|i| (i < rows1).then_some(i),
            &mut |i, row| crate::common::warm_seed_row(seed, i as u64, row),
        ) {
            return false;
        }
        // Same factory and cfg.dim as m1, so this cannot refuse once m1
        // absorbed — the guard is belt and braces.
        if !self.m2.init_from(
            warm.dim,
            warm.emb2,
            &|i| (i < rows2).then_some(i),
            &mut |i, row| crate::common::warm_seed_row(seed, (1u64 << 32) | i as u64, row),
        ) {
            return false;
        }
        self.map = Matrix::identity(self.cfg.dim);
        self.back = Matrix::identity(self.cfg.dim);
        true
    }
}

/// Joint SGD on `‖M·e₁ − e₂‖²` for every seed pair; `update_entities`
/// selects the joint objective (map + seed embeddings) over map-only.
/// Shared with KDCoE's relation view (its co-training loop owns concrete
/// models, so it bypasses the harness).
pub(crate) fn seed_step(
    m1: &mut dyn RelationModel,
    m2: &mut dyn RelationModel,
    map: &mut Matrix,
    seeds: &[AlignedPair],
    cfg: &RunConfig,
    update_entities: bool,
) {
    let dim = cfg.dim;
    let lr = cfg.lr;
    let mut me1 = vec![0.0f32; dim];
    let mut mtu = vec![0.0f32; dim];
    for &(a, b) in seeds {
        let e1: Vec<f32> = m1.entities().row(a.idx()).to_vec();
        map.matvec_into(&e1, &mut me1);
        let u: Vec<f32> = {
            let e2 = m2.entities().row(b.idx());
            me1.iter().zip(e2).map(|(x, y)| x - y).collect()
        };
        // dL/dM = 2·u·e₁ᵀ ; dL/de₁ = 2·Mᵀu ; dL/de₂ = −2u.
        map.matvec_t_into(&u, &mut mtu);
        for i in 0..dim {
            for j in 0..dim {
                map[(i, j)] -= 2.0 * lr * u[i] * e1[j];
            }
        }
        if update_entities {
            m1.entities_mut().sgd_row(a.idx(), &mtu, 2.0 * lr);
            let neg_u: Vec<f32> = u.iter().map(|x| -x).collect();
            m2.entities_mut().sgd_row(b.idx(), &neg_u, 2.0 * lr);
        }
    }
}

/// `M`-mapped KG1 embeddings against raw KG2 embeddings.
pub(crate) fn mapped_output(
    m1: &dyn RelationModel,
    m2: &dyn RelationModel,
    map: &Matrix,
    cfg: &RunConfig,
    metric: Metric,
) -> ApproachOutput {
    let n1 = m1.num_entities();
    let mut emb1 = Vec::with_capacity(n1 * cfg.dim);
    let mut buf = vec![0.0f32; cfg.dim];
    for e in 0..n1 {
        map.matvec_into(m1.entities().row(e), &mut buf);
        emb1.extend_from_slice(&buf);
    }
    ApproachOutput::new(cfg.dim, metric, emb1, m2.entities().data().to_vec())
}

impl TransformationHarness<'_> {
    /// Cycle consistency on random unlabeled KG1 entities:
    /// `‖M̄·(M·e₁) − e₁‖²` trains both maps.
    fn cycle_step(
        &self,
        m1: &mut dyn RelationModel,
        map: &mut Matrix,
        back: &mut Matrix,
        cfg: &RunConfig,
        rng: &mut SmallRng,
    ) {
        let dim = cfg.dim;
        let n = m1.num_entities();
        if n == 0 {
            return;
        }
        let lr = cfg.lr * self.cycle_weight;
        let mut fwd = vec![0.0f32; dim];
        let mut cyc = vec![0.0f32; dim];
        let mut btu = vec![0.0f32; dim];
        for _ in 0..(n / 10).max(1) {
            let e = rng.gen_range(0..n);
            let e1: Vec<f32> = m1.entities().row(e).to_vec();
            map.matvec_into(&e1, &mut fwd);
            back.matvec_into(&fwd, &mut cyc);
            let u: Vec<f32> = cyc.iter().zip(&e1).map(|(x, y)| x - y).collect();
            // dL/dback = 2·u·fwdᵀ ; dL/dfwd = 2·backᵀu → dL/dmap = (2·backᵀu)·e₁ᵀ
            back.matvec_t_into(&u, &mut btu);
            for i in 0..dim {
                for j in 0..dim {
                    back[(i, j)] -= 2.0 * lr * u[i] * fwd[j];
                    map[(i, j)] -= 2.0 * lr * btu[i] * e1[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openea_math::vecops;
    use openea_models::TransE;
    use openea_runtime::rng::SeedableRng;

    fn transe_factory() -> Box<ModelFactory> {
        Box::new(|n, r, d, seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Box::new(TransE::new(n, r, d, 1.0, &mut rng))
        })
    }

    #[test]
    fn transformation_maps_seeds_close() {
        // Two identical small KGs: the transformation should map seed
        // embeddings close to their counterparts.
        let pair =
            openea_synth::PresetConfig::new(openea_synth::DatasetFamily::EnFr, 150, false, 77)
                .generate();
        let mut rng = SmallRng::seed_from_u64(0);
        let folds = openea_core::k_fold_splits(&pair.alignment, 5, &mut rng);
        let factory = transe_factory();
        let h = TransformationHarness {
            factory: &factory,
            label: "test",
            metric: Metric::Euclidean,
            cycle_weight: 0.0,
            orthogonal: false,
            update_entities: true,
            requirements: Requirements::default(),
        };
        let cfg = RunConfig {
            dim: 16,
            max_epochs: 30,
            ..RunConfig::default()
        };
        let out = h.run(&pair, &folds[0], &cfg);
        // Mapped seed pairs are closer than random pairs on average.
        let mut seed_d = 0.0;
        let mut rand_d = 0.0;
        let train = &folds[0].train;
        for (k, &(a, b)) in train.iter().enumerate() {
            seed_d += vecops::euclidean(out.vec1(a), out.vec2(b));
            let (c, d) = train[(k + 1) % train.len()];
            let _ = c;
            rand_d += vecops::euclidean(out.vec1(a), out.vec2(d));
        }
        assert!(seed_d < rand_d, "seed {seed_d} vs random {rand_d}");
    }
}
