//! The driver engine: one hook-based epoch loop shared by every approach.
//!
//! Each approach driver used to hand-copy ~50 lines of scaffolding — epoch
//! iteration, validation cadence, early stopping, best-checkpoint retention
//! and trace recording. [`run_driver`] owns that loop once; drivers express
//! only their differences through [`EpochHooks`]: per-epoch training,
//! bootstrapping / co-training / calibration between epochs, and checkpoint
//! extraction.
//!
//! Determinism contract: the engine adds no randomness of its own. All RNG
//! flows through the hooks from streams the driver derives from
//! [`RunContext::seed`], and the loop structure (before-epoch → train →
//! after-epoch bookkeeping → validation every `check_every` epochs)
//! reproduces the historical hand-written drivers exactly, so a migrated
//! driver is bit-identical by construction — pinned by the golden-hash
//! suite in `tests/approach_matrix.rs` across thread counts {1, 2, 8}.
//! Deadline checks consult the wall clock but only decide *whether* the
//! next epoch starts, never how an epoch trains, so an unbudgeted run is
//! unaffected by timing noise.

use crate::common::{
    validation_hits1, ApproachOutput, EarlyStopper, EpochStats, RunConfig, TraceRecorder,
};
use openea_core::AlignedPair;
use openea_models::trainer::{EpochTrace, StopReason, TrainError};
use openea_runtime::rng::{SeedableRng, SmallRng};
use std::time::{Duration, Instant};

/// Wall-clock / epoch ceiling for a driver run. The default imposes none.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Hard wall-clock ceiling on the whole epoch loop; once exceeded the
    /// engine stops gracefully before the next epoch.
    pub max_wall: Option<Duration>,
    /// Cap on trained epochs, tightening `RunConfig::max_epochs`.
    pub max_epochs: Option<usize>,
}

impl Budget {
    /// No limits.
    pub fn none() -> Self {
        Self::default()
    }

    /// A wall-clock-only budget of `secs` seconds.
    pub fn wall_secs(secs: f64) -> Self {
        Self {
            max_wall: Some(Duration::from_secs_f64(secs)),
            max_epochs: None,
        }
    }

    /// An epoch-count-only budget.
    pub fn epochs(n: usize) -> Self {
        Self {
            max_wall: None,
            max_epochs: Some(n),
        }
    }

    /// Whether the budget is spent `elapsed` into a run with `epochs_done`
    /// completed epochs.
    fn exhausted(&self, elapsed: Duration, epochs_done: usize) -> bool {
        self.max_wall.is_some_and(|w| elapsed >= w)
            || self.max_epochs.is_some_and(|m| epochs_done >= m)
    }
}

/// Live telemetry receiver: the engine reports every ended epoch (with its
/// validation score attached when the epoch was a checkpoint) and the final
/// stop reason. Implementations must be cheap — they run inside the loop.
pub trait TelemetrySink: Sync {
    fn on_epoch(&self, _label: &str, _epoch: &EpochTrace) {}
    fn on_stop(&self, _label: &str, _stop: &StopReason) {}
}

/// Artifact receiver for trained embeddings: the engine hands over every
/// validation checkpoint (with its score and the trace recorded so far) and
/// the finished run's final output. Installing one on [`RunContext`] lets
/// *any* registry approach emit durable serving artifacts — the snapshot
/// writer in `openea-serve` is the canonical implementation — without the
/// driver knowing anything about persistence formats.
///
/// Checkpoint outputs carry the partial trace (`stop` still
/// `NotRecorded`); the completion output carries the finished trace. Sinks
/// run on the driver thread, so expensive work (disk writes of large
/// embedding tables) bills to the epoch that produced the checkpoint.
pub trait CheckpointSink: Sync {
    /// A validation checkpoint: `out` is the extracted output with the
    /// trace-so-far attached, `score` its validation Hits@1.
    fn on_checkpoint(&self, _label: &str, _epoch: usize, _out: &ApproachOutput, _score: f64) {}

    /// The finished run's output, final trace attached.
    fn on_complete(&self, _label: &str, _out: &ApproachOutput) {}
}

/// Previous-generation parameters for resuming training, in the layout the
/// serving snapshot stores them: KG1 rows then KG2 rows, `dim` floats each.
/// Row `i` of `emb1`/`emb2` is entity `i` of the respective KG — entity ids
/// are stable across generations (evolution traces only append), so a
/// driver warm-starts by copying row-for-row and seeding the tail.
#[derive(Clone, Copy, Debug)]
pub struct WarmStart<'a> {
    /// Width of each stored row. Drivers whose entity dimension differs
    /// (RotatE interleaves, SimplE halves) refuse the warm start and fall
    /// back to cold init.
    pub dim: usize,
    pub emb1: &'a [f32],
    pub emb2: &'a [f32],
    /// [`Snapshot::generation`] of the snapshot these parameters came from;
    /// stamped into the output's [`Lineage`].
    pub parent_generation: u64,
    /// Cumulative epochs already spent producing these parameters.
    pub trained_epochs: u64,
}

impl WarmStart<'_> {
    /// KG1 entities present in the warm parameters.
    pub fn rows1(&self) -> usize {
        self.emb1.len() / self.dim.max(1)
    }

    /// KG2 entities present in the warm parameters.
    pub fn rows2(&self) -> usize {
        self.emb2.len() / self.dim.max(1)
    }
}

/// What is new in this run's inputs relative to the warm snapshot. Entity
/// ids are stable and delta steps strictly extend, so "new" is a suffix:
/// KG1 entities `>= known1` (and KG2 `>= known2`) did not exist in the
/// parent generation. Carried for telemetry and delta bookkeeping; the
/// engine itself only threads it through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaPlan {
    /// KG1 entities already present in the warm snapshot.
    pub known1: usize,
    /// KG2 entities already present in the warm snapshot.
    pub known2: usize,
    /// Relation triples (both KGs) new since the warm snapshot.
    pub new_triples: usize,
}

/// Provenance of a trained output: which snapshot generation it resumed
/// from and the cumulative epoch count across the whole lineage chain.
/// Stamped by the engine on every checkpoint of a warm-started run and
/// persisted in the version-2 snapshot header; cold runs carry `None` so
/// their artifacts stay byte-identical to the pre-lineage format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lineage {
    /// Generation fingerprint of the parent snapshot.
    pub parent_generation: u64,
    /// Epochs spent across all generations up to and including this output.
    pub trained_epochs: u64,
}

/// Everything a driver run needs beyond the hyper-parameters: the run seed
/// (root of every reserved RNG stream), the worker thread count, an
/// optional wall/epoch [`Budget`], the validation pairs the engine
/// checkpoints on, and an optional [`TelemetrySink`].
#[derive(Clone, Copy)]
pub struct RunContext<'a> {
    /// Run seed; every driver RNG stream derives from it.
    pub seed: u64,
    /// Worker threads for training and similarity search.
    pub threads: usize,
    pub budget: Budget,
    /// Validation pairs for the checkpoint cadence. `None` disables
    /// validation and early stopping entirely (the unsupervised pipeline);
    /// supervised drivers install `split.valid` via [`RunContext::for_valid`].
    pub valid: Option<&'a [AlignedPair]>,
    pub sink: Option<&'a dyn TelemetrySink>,
    /// Artifact receiver for checkpoint / final embeddings (the serving
    /// layer's snapshot writer). `None` — the default — emits nothing.
    pub artifacts: Option<&'a dyn CheckpointSink>,
    /// Previous-generation parameters to resume from. `None` — the default
    /// — trains cold, bit-identical to the pre-warm-start engine.
    pub warm: Option<&'a WarmStart<'a>>,
    /// What is new relative to `warm`; `None` when unknown or cold.
    pub delta: Option<DeltaPlan>,
}

impl<'a> RunContext<'a> {
    /// A default context mirroring the configuration: no budget, no
    /// validation override, no sink.
    pub fn new(cfg: &RunConfig) -> Self {
        Self {
            seed: cfg.seed,
            threads: cfg.threads,
            budget: Budget::none(),
            valid: None,
            sink: None,
            artifacts: None,
            warm: None,
            delta: None,
        }
    }

    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    pub fn with_sink(mut self, sink: &'a dyn TelemetrySink) -> RunContext<'a> {
        self.sink = Some(sink);
        self
    }

    /// The same context emitting checkpoint/final artifacts to `sink`.
    pub fn with_artifacts(mut self, sink: &'a dyn CheckpointSink) -> RunContext<'a> {
        self.artifacts = Some(sink);
        self
    }

    /// The same context with validation checkpoints driven by `valid`.
    pub fn for_valid(mut self, valid: &'a [AlignedPair]) -> RunContext<'a> {
        self.valid = Some(valid);
        self
    }

    /// The same context resuming from a previous generation's parameters.
    /// Drivers that cannot absorb them (see [`EpochHooks::warm_start`])
    /// train cold; the run still succeeds.
    pub fn resume_from(mut self, warm: &'a WarmStart<'a>) -> RunContext<'a> {
        self.warm = Some(warm);
        self
    }

    /// The same context annotated with what is new relative to the warm
    /// snapshot.
    pub fn with_delta(mut self, plan: DeltaPlan) -> RunContext<'a> {
        self.delta = Some(plan);
        self
    }

    /// The driver's own RNG (model init, shuffles, per-epoch train seeds) —
    /// seeded from the run seed exactly as the historical drivers did.
    pub fn driver_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }

    /// Reserved stream `idx` of the run seed's stream registry, decorrelated
    /// from the driver RNG and from other streams.
    pub fn stream(&self, idx: u64) -> SmallRng {
        SmallRng::stream(self.seed, idx)
    }

    /// Salted seed for an auxiliary sub-model (KDCoE's second KG model, the
    /// transformation harness factories).
    pub fn model_seed(&self, salt: u64) -> u64 {
        self.seed ^ salt
    }
}

/// The per-approach hooks the engine drives. Only `train_epoch` and
/// `checkpoint` carry real work for most drivers; `before_epoch` /
/// `after_epoch` host the semi-supervised extras (sampler refresh,
/// bootstrapping, iterative augmentation, co-training, soft calibration) at
/// exactly the loop positions the historical drivers used.
pub trait EpochHooks {
    /// Runs before an epoch's training step.
    fn before_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {}

    /// Trains one epoch and reports its loss/throughput stats.
    fn train_epoch(&mut self, epoch: usize, ctx: &RunContext<'_>) -> EpochStats;

    /// Runs after training but before the epoch closes (bootstrapping,
    /// augmentation, attribute pulls — their wall time bills to the epoch).
    fn after_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {}

    /// Extracts the current alignment-ready output; called at validation
    /// checkpoints and once more for the final result when no checkpoint
    /// was retained.
    fn checkpoint(&mut self, ctx: &RunContext<'_>) -> ApproachOutput;

    /// Absorbs previous-generation parameters before epoch 0 when the
    /// context carries a [`WarmStart`]. Returns `true` when the parameters
    /// were absorbed (the engine then stamps [`Lineage`] on every
    /// checkpoint); the default returns `false` — the driver trains cold
    /// and the run proceeds exactly as without a warm start, so every
    /// driver accepts a resume request without per-driver changes.
    ///
    /// Implementations live in the shared components (the unified-space
    /// trainer, the transformation harness), not in individual drivers:
    /// copy warm rows for entities the parent generation knew, seed new
    /// entities from a reserved per-entity RNG stream, and refuse (return
    /// `false`) on any dimension mismatch.
    fn warm_start(&mut self, _warm: &WarmStart<'_>, _ctx: &RunContext<'_>) -> bool {
        false
    }
}

/// Runs the shared driver loop: epoch iteration under the context's budget,
/// validation every `cfg.check_every` epochs with best-checkpoint retention
/// and early stopping, and trace recording. Returns the best validated
/// output (falling back to a final checkpoint when validation never ran)
/// with its [`crate::common::TrainTrace`] attached, or the configuration
/// error that prevented the run from starting.
pub fn run_driver<H: EpochHooks>(
    label: &str,
    hooks: &mut H,
    ctx: &RunContext<'_>,
    cfg: &RunConfig,
) -> Result<ApproachOutput, TrainError> {
    cfg.validate()?;
    let start = Instant::now();
    // Warm-start absorption happens once, before epoch 0. When the hooks
    // decline (default), the run trains cold and no lineage is stamped —
    // the cold path through the rest of the loop is bit-identical to the
    // pre-warm-start engine.
    let lineage = match ctx.warm {
        Some(w) if hooks.warm_start(w, ctx) => Some(*w),
        _ => None,
    };
    let stamp = |out: &mut ApproachOutput, epochs_done: u64| {
        if let Some(w) = &lineage {
            out.lineage = Some(Lineage {
                parent_generation: w.parent_generation,
                trained_epochs: w.trained_epochs + epochs_done,
            });
        }
    };
    let mut rec = TraceRecorder::new(label);
    let mut stopper = EarlyStopper::new(cfg.patience);
    let mut best: Option<ApproachOutput> = None;
    let mut epochs_done = 0u64;
    for epoch in 0..cfg.max_epochs {
        if ctx.budget.exhausted(start.elapsed(), epoch) {
            rec.deadline_stop(epoch);
            break;
        }
        rec.begin_epoch();
        hooks.before_epoch(epoch, ctx);
        let stats = hooks.train_epoch(epoch, ctx);
        hooks.after_epoch(epoch, ctx);
        rec.end_epoch(epoch, stats);
        epochs_done += 1;

        let mut stop = false;
        if let Some(valid) = ctx.valid {
            if (epoch + 1).is_multiple_of(cfg.check_every) {
                let mut out = hooks.checkpoint(ctx);
                stamp(&mut out, epochs_done);
                let score = validation_hits1(&out, valid, ctx.threads);
                rec.record_validation(score);
                if let Some(artifacts) = ctx.artifacts {
                    out.trace = rec.so_far();
                    artifacts.on_checkpoint(label, epoch, &out, score);
                }
                if score > stopper.best() || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    stop = true;
                }
            }
        }
        if let (Some(sink), Some(e)) = (ctx.sink, rec.last()) {
            sink.on_epoch(label, e);
        }
        if stop {
            break;
        }
    }
    let mut out = best.unwrap_or_else(|| {
        let mut o = hooks.checkpoint(ctx);
        stamp(&mut o, epochs_done);
        o
    });
    out.trace = rec.finish();
    if let Some(sink) = ctx.sink {
        sink.on_stop(label, &out.trace.stop);
    }
    if let Some(artifacts) = ctx.artifacts {
        artifacts.on_complete(label, &out);
    }
    Ok(out)
}
