//! The driver engine: one hook-based epoch loop shared by every approach.
//!
//! Each approach driver used to hand-copy ~50 lines of scaffolding — epoch
//! iteration, validation cadence, early stopping, best-checkpoint retention
//! and trace recording. [`run_driver`] owns that loop once; drivers express
//! only their differences through [`EpochHooks`]: per-epoch training,
//! bootstrapping / co-training / calibration between epochs, and checkpoint
//! extraction.
//!
//! Determinism contract: the engine adds no randomness of its own. All RNG
//! flows through the hooks from streams the driver derives from
//! [`RunContext::seed`], and the loop structure (before-epoch → train →
//! after-epoch bookkeeping → validation every `check_every` epochs)
//! reproduces the historical hand-written drivers exactly, so a migrated
//! driver is bit-identical by construction — pinned by the golden-hash
//! suite in `tests/approach_matrix.rs` across thread counts {1, 2, 8}.
//! Deadline checks consult the wall clock but only decide *whether* the
//! next epoch starts, never how an epoch trains, so an unbudgeted run is
//! unaffected by timing noise.

use crate::common::{
    validation_hits1, ApproachOutput, EarlyStopper, EpochStats, RunConfig, TraceRecorder,
};
use openea_core::AlignedPair;
use openea_models::trainer::{EpochTrace, StopReason, TrainError};
use openea_runtime::rng::{SeedableRng, SmallRng};
use std::time::{Duration, Instant};

/// Wall-clock / epoch ceiling for a driver run. The default imposes none.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Hard wall-clock ceiling on the whole epoch loop; once exceeded the
    /// engine stops gracefully before the next epoch.
    pub max_wall: Option<Duration>,
    /// Cap on trained epochs, tightening `RunConfig::max_epochs`.
    pub max_epochs: Option<usize>,
}

impl Budget {
    /// No limits.
    pub fn none() -> Self {
        Self::default()
    }

    /// A wall-clock-only budget of `secs` seconds.
    pub fn wall_secs(secs: f64) -> Self {
        Self {
            max_wall: Some(Duration::from_secs_f64(secs)),
            max_epochs: None,
        }
    }

    /// An epoch-count-only budget.
    pub fn epochs(n: usize) -> Self {
        Self {
            max_wall: None,
            max_epochs: Some(n),
        }
    }

    /// Whether the budget is spent `elapsed` into a run with `epochs_done`
    /// completed epochs.
    fn exhausted(&self, elapsed: Duration, epochs_done: usize) -> bool {
        self.max_wall.is_some_and(|w| elapsed >= w)
            || self.max_epochs.is_some_and(|m| epochs_done >= m)
    }
}

/// Live telemetry receiver: the engine reports every ended epoch (with its
/// validation score attached when the epoch was a checkpoint) and the final
/// stop reason. Implementations must be cheap — they run inside the loop.
pub trait TelemetrySink: Sync {
    fn on_epoch(&self, _label: &str, _epoch: &EpochTrace) {}
    fn on_stop(&self, _label: &str, _stop: &StopReason) {}
}

/// Artifact receiver for trained embeddings: the engine hands over every
/// validation checkpoint (with its score and the trace recorded so far) and
/// the finished run's final output. Installing one on [`RunContext`] lets
/// *any* registry approach emit durable serving artifacts — the snapshot
/// writer in `openea-serve` is the canonical implementation — without the
/// driver knowing anything about persistence formats.
///
/// Checkpoint outputs carry the partial trace (`stop` still
/// `NotRecorded`); the completion output carries the finished trace. Sinks
/// run on the driver thread, so expensive work (disk writes of large
/// embedding tables) bills to the epoch that produced the checkpoint.
pub trait CheckpointSink: Sync {
    /// A validation checkpoint: `out` is the extracted output with the
    /// trace-so-far attached, `score` its validation Hits@1.
    fn on_checkpoint(&self, _label: &str, _epoch: usize, _out: &ApproachOutput, _score: f64) {}

    /// The finished run's output, final trace attached.
    fn on_complete(&self, _label: &str, _out: &ApproachOutput) {}
}

/// Everything a driver run needs beyond the hyper-parameters: the run seed
/// (root of every reserved RNG stream), the worker thread count, an
/// optional wall/epoch [`Budget`], the validation pairs the engine
/// checkpoints on, and an optional [`TelemetrySink`].
#[derive(Clone, Copy)]
pub struct RunContext<'a> {
    /// Run seed; every driver RNG stream derives from it.
    pub seed: u64,
    /// Worker threads for training and similarity search.
    pub threads: usize,
    pub budget: Budget,
    /// Validation pairs for the checkpoint cadence. `None` disables
    /// validation and early stopping entirely (the unsupervised pipeline);
    /// supervised drivers install `split.valid` via [`RunContext::for_valid`].
    pub valid: Option<&'a [AlignedPair]>,
    pub sink: Option<&'a dyn TelemetrySink>,
    /// Artifact receiver for checkpoint / final embeddings (the serving
    /// layer's snapshot writer). `None` — the default — emits nothing.
    pub artifacts: Option<&'a dyn CheckpointSink>,
}

impl<'a> RunContext<'a> {
    /// A default context mirroring the configuration: no budget, no
    /// validation override, no sink.
    pub fn new(cfg: &RunConfig) -> Self {
        Self {
            seed: cfg.seed,
            threads: cfg.threads,
            budget: Budget::none(),
            valid: None,
            sink: None,
            artifacts: None,
        }
    }

    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    pub fn with_sink(mut self, sink: &'a dyn TelemetrySink) -> RunContext<'a> {
        self.sink = Some(sink);
        self
    }

    /// The same context emitting checkpoint/final artifacts to `sink`.
    pub fn with_artifacts(mut self, sink: &'a dyn CheckpointSink) -> RunContext<'a> {
        self.artifacts = Some(sink);
        self
    }

    /// The same context with validation checkpoints driven by `valid`.
    pub fn for_valid(mut self, valid: &'a [AlignedPair]) -> RunContext<'a> {
        self.valid = Some(valid);
        self
    }

    /// The driver's own RNG (model init, shuffles, per-epoch train seeds) —
    /// seeded from the run seed exactly as the historical drivers did.
    pub fn driver_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }

    /// Reserved stream `idx` of the run seed's stream registry, decorrelated
    /// from the driver RNG and from other streams.
    pub fn stream(&self, idx: u64) -> SmallRng {
        SmallRng::stream(self.seed, idx)
    }

    /// Salted seed for an auxiliary sub-model (KDCoE's second KG model, the
    /// transformation harness factories).
    pub fn model_seed(&self, salt: u64) -> u64 {
        self.seed ^ salt
    }
}

/// The per-approach hooks the engine drives. Only `train_epoch` and
/// `checkpoint` carry real work for most drivers; `before_epoch` /
/// `after_epoch` host the semi-supervised extras (sampler refresh,
/// bootstrapping, iterative augmentation, co-training, soft calibration) at
/// exactly the loop positions the historical drivers used.
pub trait EpochHooks {
    /// Runs before an epoch's training step.
    fn before_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {}

    /// Trains one epoch and reports its loss/throughput stats.
    fn train_epoch(&mut self, epoch: usize, ctx: &RunContext<'_>) -> EpochStats;

    /// Runs after training but before the epoch closes (bootstrapping,
    /// augmentation, attribute pulls — their wall time bills to the epoch).
    fn after_epoch(&mut self, _epoch: usize, _ctx: &RunContext<'_>) {}

    /// Extracts the current alignment-ready output; called at validation
    /// checkpoints and once more for the final result when no checkpoint
    /// was retained.
    fn checkpoint(&mut self, ctx: &RunContext<'_>) -> ApproachOutput;
}

/// Runs the shared driver loop: epoch iteration under the context's budget,
/// validation every `cfg.check_every` epochs with best-checkpoint retention
/// and early stopping, and trace recording. Returns the best validated
/// output (falling back to a final checkpoint when validation never ran)
/// with its [`crate::common::TrainTrace`] attached, or the configuration
/// error that prevented the run from starting.
pub fn run_driver<H: EpochHooks>(
    label: &str,
    hooks: &mut H,
    ctx: &RunContext<'_>,
    cfg: &RunConfig,
) -> Result<ApproachOutput, TrainError> {
    cfg.validate()?;
    let start = Instant::now();
    let mut rec = TraceRecorder::new(label);
    let mut stopper = EarlyStopper::new(cfg.patience);
    let mut best: Option<ApproachOutput> = None;
    for epoch in 0..cfg.max_epochs {
        if ctx.budget.exhausted(start.elapsed(), epoch) {
            rec.deadline_stop(epoch);
            break;
        }
        rec.begin_epoch();
        hooks.before_epoch(epoch, ctx);
        let stats = hooks.train_epoch(epoch, ctx);
        hooks.after_epoch(epoch, ctx);
        rec.end_epoch(epoch, stats);

        let mut stop = false;
        if let Some(valid) = ctx.valid {
            if (epoch + 1).is_multiple_of(cfg.check_every) {
                let mut out = hooks.checkpoint(ctx);
                let score = validation_hits1(&out, valid, ctx.threads);
                rec.record_validation(score);
                if let Some(artifacts) = ctx.artifacts {
                    out.trace = rec.so_far();
                    artifacts.on_checkpoint(label, epoch, &out, score);
                }
                if score > stopper.best() || best.is_none() {
                    best = Some(out);
                }
                if stopper.should_stop(score) {
                    rec.early_stop(epoch);
                    stop = true;
                }
            }
        }
        if let (Some(sink), Some(e)) = (ctx.sink, rec.last()) {
            sink.on_epoch(label, e);
        }
        if stop {
            break;
        }
    }
    let mut out = best.unwrap_or_else(|| hooks.checkpoint(ctx));
    out.trace = rec.finish();
    if let Some(sink) = ctx.sink {
        sink.on_stop(label, &out.trace.stop);
    }
    if let Some(artifacts) = ctx.artifacts {
        artifacts.on_complete(label, &out);
    }
    Ok(out)
}
