//! # openea-approaches
//!
//! The 12 embedding-based entity-alignment approaches integrated in OpenEA
//! (paper Sect. 4), rebuilt from scratch on the substrates of this workspace.
//! Each approach composes an embedding module, an alignment module and an
//! interaction mode exactly as categorized in the paper's Table 1:
//!
//! | Approach  | Relation emb. | Attr. | Metric     | Combination    | Learning |
//! |-----------|---------------|-------|------------|----------------|----------|
//! | MTransE   | triple        | –     | Euclidean  | transformation | superv.  |
//! | IPTransE  | path          | –     | Euclidean  | sharing        | semi     |
//! | JAPE      | triple        | corr. | cosine     | sharing        | superv.  |
//! | KDCoE     | triple        | lit.  | Euclidean  | transformation | semi     |
//! | BootEA    | triple        | –     | cosine     | swapping       | semi     |
//! | GCNAlign  | neighborhood  | corr. | Manhattan  | calibration    | superv.  |
//! | AttrE     | triple        | lit.  | cosine     | sharing        | superv.  |
//! | IMUSE     | triple        | lit.  | cosine     | sharing        | superv.  |
//! | SEA       | triple        | –     | cosine     | transformation | superv.  |
//! | RSN4EA    | path          | –     | cosine     | sharing        | superv.  |
//! | MultiKE   | triple        | lit.  | cosine     | swapping       | superv.  |
//! | RDGCN     | neighborhood  | lit.  | Manhattan  | calibration    | superv.  |

pub mod alinet;
pub mod attre;
pub mod boot;
pub mod bootea;
pub mod common;
pub mod engine;
pub mod gcn;
pub mod gcnalign;
pub mod imuse;
pub mod iptranse;
pub mod jape;
pub mod kdcoe;
pub mod mtranse;
pub mod multike;
pub mod rdgcn;
pub mod registry;
pub mod rsn4ea;
pub mod sea;
pub mod transformation;
pub mod unsupervised;

pub use common::{
    evaluate_output, Approach, ApproachOutput, Req, Requirements, RunConfig, StopReason,
    TrainError, TrainTrace, UnifiedSpace,
};
pub use engine::{
    run_driver, Budget, CheckpointSink, DeltaPlan, EpochHooks, Lineage, RunContext, TelemetrySink,
    WarmStart,
};
pub use registry::{all_approaches, approach_by_name, ApproachKind};
