use openea_approaches::*;
use openea_core::k_fold_splits;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;
use std::time::Instant;

fn main() {
    let family = std::env::args().nth(1).unwrap_or_else(|| "EnFr".into());
    let fam = match family.as_str() {
        "DY" => openea_synth::DatasetFamily::DY,
        "DW" => openea_synth::DatasetFamily::DW,
        _ => openea_synth::DatasetFamily::EnFr,
    };
    let pair = openea_synth::PresetConfig::new(fam, 400, false, 7).generate();
    println!(
        "pair: {} aligned, kg1 {} triples",
        pair.num_aligned(),
        pair.kg1.num_rel_triples()
    );
    let mut rng = SmallRng::seed_from_u64(1);
    let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
    let split = &folds[0];
    let mut cfg = RunConfig {
        max_epochs: 60,
        ..RunConfig::default()
    };
    // cross-lingual word vectors
    if fam == openea_synth::DatasetFamily::EnFr {
        let tr = openea_synth::Translator::new(openea_synth::Language::L2, 4000, 0.02);
        cfg.word_vectors = openea_models::literal::WordVectors::cross_lingual(
            cfg.dim,
            tr.dictionary_pairs(),
            0.08,
        );
    }
    for a in all_approaches() {
        let t0 = Instant::now();
        let out = a.run(&pair, split, &cfg);
        let eval = evaluate_output(&out, &split.test, cfg.threads);
        println!(
            "{:10} hits1={:.3} hits5={:.3} mrr={:.3}  ({:.1}s)",
            a.name(),
            eval.hits1,
            eval.hits5,
            eval.mrr,
            t0.elapsed().as_secs_f32()
        );
    }
}
