//! Quickstart: generate a benchmark dataset pair, train one embedding-based
//! entity-alignment approach, and evaluate it with the paper's metrics.
//!
//! ```sh
//! cargo run --release -p openea --example quickstart
//! ```

use openea::prelude::*;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

fn main() {
    // 1. A synthetic EN-FR-style dataset: two KGs with power-law structure,
    //    cross-lingual literals, and a reference alignment.
    let pair = PresetConfig::new(DatasetFamily::EnFr, 400, false, 42).generate();
    println!(
        "dataset: |E1|={} |E2|={} rel-triples=({}, {}) attr-triples=({}, {}) aligned={}",
        pair.kg1.num_entities(),
        pair.kg2.num_entities(),
        pair.kg1.num_rel_triples(),
        pair.kg2.num_rel_triples(),
        pair.kg1.num_attr_triples(),
        pair.kg2.num_attr_triples(),
        pair.num_aligned(),
    );

    // 2. The paper's 20/10/70 cross-validation split.
    let mut rng = SmallRng::seed_from_u64(1);
    let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
    let split = &folds[0];
    println!(
        "fold 0: {} train / {} valid / {} test",
        split.train.len(),
        split.valid.len(),
        split.test.len()
    );

    // 3. Train BootEA (one of the paper's top-3 approaches).
    let cfg = RunConfig {
        max_epochs: 80,
        ..RunConfig::default()
    };
    let approach = approach_by_name("BootEA").expect("registered approach");
    let out = approach.run(&pair, split, &cfg);

    // 4. Evaluate with Hits@k / MR / MRR over the test candidates.
    let eval = evaluate_output(&out, &split.test, cfg.threads);
    println!(
        "BootEA:  Hits@1 {:.3}  Hits@5 {:.3}  MR {:.1}  MRR {:.3}",
        eval.hits1, eval.hits5, eval.mr, eval.mrr
    );

    // 5. Bonus: per-iteration quality of BootEA's bootstrapped alignment
    //    (the Figure 7 curve).
    for (i, prf) in out.augmentation.iter().enumerate() {
        println!(
            "  boot round {}: precision {:.3} recall {:.3} f1 {:.3}",
            i + 1,
            prf.precision,
            prf.recall,
            prf.f1
        );
    }
}
