//! Semi-supervised learning strategies (Figure 7 of the paper): the quality
//! of the alignment that IPTransE, BootEA and KDCoE add to their training
//! seeds over self-/co-training iterations.
//!
//! The expected shapes: BootEA's conflict-edited proposals keep precision
//! high while recall grows; IPTransE's uncurated self-training accumulates
//! errors; KDCoE proposes few but precise pairs.
//!
//! ```sh
//! cargo run --release -p openea --example bootstrapping
//! ```

use openea::prelude::*;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

fn main() {
    let pair = PresetConfig::new(DatasetFamily::EnFr, 500, false, 13).generate();
    let mut rng = SmallRng::seed_from_u64(3);
    let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
    let split = &folds[0];
    let cfg = RunConfig {
        max_epochs: 90,
        ..RunConfig::default()
    };

    for kind in [
        ApproachKind::IPTransE,
        ApproachKind::BootEa,
        ApproachKind::KdCoe,
    ] {
        let approach = kind.build();
        let out = approach.run(&pair, split, &cfg);
        let eval = evaluate_output(&out, &split.test, cfg.threads);
        println!("\n{} (test Hits@1 {:.3}):", approach.name(), eval.hits1);
        println!("  iter  precision  recall   f1");
        for (i, prf) in out.augmentation.iter().enumerate() {
            println!(
                "  {:>4}  {:>9.3}  {:>6.3}  {:>5.3}",
                i + 1,
                prf.precision,
                prf.recall,
                prf.f1
            );
        }
        if out.augmentation.is_empty() {
            println!("  (no augmentation rounds ran)");
        }
    }
}
