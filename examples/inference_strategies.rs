//! Distance metrics and alignment-inference strategies (Table 6 and the
//! geometric analysis of Sect. 6.1): take one trained model's embeddings and
//! compare Greedy, Greedy + CSLS, stable marriage, and SM + CSLS, plus the
//! hubness/isolation profile that explains the gains.
//!
//! ```sh
//! cargo run --release -p openea --example inference_strategies
//! ```

use openea::align::{hubness_profile, sinkhorn_match, topk_similarity_profile, SinkhornConfig};
use openea::prelude::*;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

fn main() {
    let pair = PresetConfig::new(DatasetFamily::DY, 400, false, 23).generate();
    let mut rng = SmallRng::seed_from_u64(5);
    let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
    let split = &folds[0];
    let cfg = RunConfig {
        max_epochs: 80,
        ..RunConfig::default()
    };

    let approach = approach_by_name("MTransE").unwrap();
    let out = approach.run(&pair, split, &cfg);

    let sources: Vec<EntityId> = split.test.iter().map(|&(a, _)| a).collect();
    let targets: Vec<EntityId> = split.test.iter().map(|&(_, b)| b).collect();
    let sim = out.similarity(&sources, &targets, cfg.threads);
    let csls = sim.csls(10);

    // Geometric diagnostics (Figures 9 and 10).
    let profile = topk_similarity_profile(&sim, 5);
    println!("top-5 similarity profile: {profile:.3?}");
    let hubs = hubness_profile(&sim);
    println!(
        "hubness: never-top1 {:.1}%  once {:.1}%  2-4x {:.1}%  ≥5x {:.1}%",
        hubs.zero * 100.0,
        hubs.one * 100.0,
        hubs.two_to_four * 100.0,
        hubs.five_plus * 100.0
    );

    // Table 6: Hits@1 of each strategy (gold pair = diagonal).
    let hits1 = |matching: &[Option<usize>]| {
        let ok = matching
            .iter()
            .enumerate()
            .filter(|&(i, &m)| m == Some(i))
            .count();
        ok as f64 / matching.len().max(1) as f64
    };
    println!("\n{:22} Hits@1", "strategy");
    println!("{:22} {:.3}", "greedy", hits1(&greedy_match(&sim)));
    println!("{:22} {:.3}", "greedy + CSLS", hits1(&greedy_match(&csls)));
    println!(
        "{:22} {:.3}",
        "stable marriage",
        hits1(&stable_marriage(&sim))
    );
    println!("{:22} {:.3}", "SM + CSLS", hits1(&stable_marriage(&csls)));
    println!(
        "{:22} {:.3}",
        "Hungarian (optimal)",
        hits1(&hungarian(&sim))
    );
    // Bonus: the optimal-transport strategy of OTEA's family (not in the
    // paper's Table 6, but a fourth collective alternative).
    let ot = sinkhorn_match(&sim, SinkhornConfig::default());
    println!("{:22} {:.3}", "Sinkhorn OT", hits1(&ot));
}
