//! Dataset construction with iterative degree-based sampling (IDS,
//! Algorithm 1 of the paper), compared against the two baseline samplers
//! RAS and PRS on the Table-3 quality metrics, then written to disk in the
//! OpenEA format.
//!
//! ```sh
//! cargo run --release -p openea --example dataset_construction
//! ```

use openea::prelude::*;
use openea::sampling::IdsOutcome;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;

fn main() {
    // A "source KG" pair several times larger than the target sample,
    // standing in for full DBpedia/Wikidata.
    let source = PresetConfig::new(DatasetFamily::EnFr, 600, false, 11).generate_source(4);
    println!(
        "source: |E1|={} |E2|={} aligned={}",
        source.kg1.num_entities(),
        source.kg2.num_entities(),
        source.num_aligned()
    );

    let target = 600;
    let mut rng = SmallRng::seed_from_u64(2);

    let ras = ras_sample(&source, target, &mut rng);
    let prs = prs_sample(&source, target, &mut rng);
    let IdsOutcome {
        pair: ids,
        js1,
        js2,
        converged,
        restarts,
    } = ids_sample(
        &source,
        IdsConfig {
            target,
            mu: 25,
            ..IdsConfig::default()
        },
        &mut rng,
    );
    println!("IDS: js=({js1:.3}, {js2:.3}) converged={converged} restarts={restarts}");

    println!(
        "\n{:8} {:>6} {:>8} {:>8} {:>10} {:>12}",
        "Sampler", "KG", "Deg.", "JS", "Isolates", "Cluster coef."
    );
    for (name, sample) in [("RAS", &ras), ("PRS", &prs), ("IDS", &ids)] {
        let (q1, q2) = sample_quality(&source, sample);
        for q in [q1, q2] {
            println!(
                "{:8} {:>6} {:>8.2} {:>7.1}% {:>9.1}% {:>12.3}",
                name,
                q.kg_name,
                q.avg_degree,
                q.js_to_source * 100.0,
                q.isolated_fraction * 100.0,
                q.clustering_coefficient
            );
        }
    }

    // Write the IDS dataset plus 5-fold splits in the OpenEA disk layout.
    let dir = std::env::temp_dir().join("openea_rs_dataset");
    let folds = k_fold_splits(&ids.alignment, 5, &mut rng);
    openea::core::io::write_pair(&dir, &ids).expect("write dataset");
    openea::core::io::write_folds(&dir, &ids, &folds).expect("write folds");
    println!("\ndataset written to {}", dir.display());

    // Round-trip to prove the format.
    let back = openea::core::io::read_pair(&dir).expect("read dataset");
    assert_eq!(back.num_aligned(), ids.num_aligned());
    println!("round-trip OK: {} aligned pairs", back.num_aligned());
}
