//! Conventional vs. embedding-based alignment and their complementarity
//! (paper Sect. 6.3 and Figure 12): run PARIS, LogMap and an embedding
//! approach on the same pair and break down which gold pairs each system
//! finds.
//!
//! ```sh
//! cargo run --release -p openea --example hybrid_alignment
//! ```

use openea::align::overlap3;
use openea::prelude::*;
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SmallRng;
use std::collections::HashSet;

fn main() {
    let pair = PresetConfig::new(DatasetFamily::DY, 500, false, 17).generate();
    let gold: Vec<(u32, u32)> = pair.alignment.iter().map(|&(a, b)| (a.0, b.0)).collect();
    let gold_set: HashSet<(u32, u32)> = gold.iter().copied().collect();

    // Conventional systems run unsupervised on the full pair.
    let mut found = Vec::new();
    let paris = Paris::default();
    let logmap = LogMap::default();
    for (name, predicted) in [
        ("PARIS", paris.align(&pair)),
        ("LogMap", logmap.align(&pair)),
    ] {
        let raw: Vec<(u32, u32)> = predicted.iter().map(|&(a, b)| (a.0, b.0)).collect();
        let prf = precision_recall_f1(&raw, &gold_set);
        println!(
            "{:8} precision {:.3}  recall {:.3}  f1 {:.3}  ({} predictions)",
            name,
            prf.precision,
            prf.recall,
            prf.f1,
            raw.len()
        );
        found.push(raw.into_iter().collect::<HashSet<_>>());
    }

    // The embedding side: RDGCN trained on fold 0, predicting over all
    // entities by greedy matching.
    let mut rng = SmallRng::seed_from_u64(4);
    let folds = k_fold_splits(&pair.alignment, 5, &mut rng);
    let cfg = RunConfig {
        max_epochs: 60,
        ..RunConfig::default()
    };
    let rdgcn = approach_by_name("RDGCN").unwrap();
    let out = rdgcn.run(&pair, &folds[0], &cfg);
    let sources: Vec<EntityId> = pair.kg1.entity_ids().collect();
    let targets: Vec<EntityId> = pair.kg2.entity_ids().collect();
    let sim = out.similarity(&sources, &targets, cfg.threads);
    let emb_pred: Vec<(u32, u32)> = greedy_match(&sim)
        .into_iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| (sources[i].0, targets[j].0)))
        .collect();
    let prf = precision_recall_f1(&emb_pred, &gold_set);
    println!(
        "{:8} precision {:.3}  recall {:.3}  f1 {:.3}  ({} predictions)",
        "OpenEA",
        prf.precision,
        prf.recall,
        prf.f1,
        emb_pred.len()
    );
    let emb_found: HashSet<(u32, u32)> = emb_pred.into_iter().collect();

    // Figure-12-style breakdown over the gold alignment.
    let o = overlap3(&gold, &emb_found, &found[1], &found[0]);
    println!("\ncorrect-alignment overlap (fractions of gold):");
    println!("  all three systems:    {:.1}%", o.all_three * 100.0);
    println!("  OpenEA ∩ LogMap only: {:.1}%", o.a_and_b * 100.0);
    println!("  OpenEA ∩ PARIS only:  {:.1}%", o.a_and_c * 100.0);
    println!("  LogMap ∩ PARIS only:  {:.1}%", o.b_and_c * 100.0);
    println!("  only OpenEA:          {:.1}%", o.only_a * 100.0);
    println!("  only LogMap:          {:.1}%", o.only_b * 100.0);
    println!("  only PARIS:           {:.1}%", o.only_c * 100.0);
    println!("  found by none:        {:.1}%", o.none * 100.0);
}
