//! The models crate on its own turf: link prediction (paper Sect. 2.1.1).
//!
//! Trains several KG embedding models on one synthetic KG and evaluates
//! filtered Hits@1/Hits@10/MR/MRR — the protocol of the FB15K/WN18 line of
//! work that the entity-alignment field builds on.
//!
//! ```sh
//! cargo run --release -p openea --example link_prediction
//! ```

use openea::math::negsamp::UniformSampler;
use openea::models::{
    evaluate_link_prediction, train_epoch, ComplEx, DistMult, RelationModel, RotatE, TransD,
    TransE, TransH, TuckEr,
};
use openea_runtime::rng::SeedableRng;
use openea_runtime::rng::SliceRandom;
use openea_runtime::rng::SmallRng;
use std::collections::HashSet;

/// A rule-structured KG: entities on a ring with algebraic relations
/// (successor, double, triple, opposite). Held-out triples are *inferable*
/// from the remaining ones, which is what link prediction measures.
fn structured_kg(n: u32) -> Vec<(u32, u32, u32)> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, 0, (i + 1) % n)); // successor
        t.push((i, 1, (2 * i) % n)); // double
        t.push((i, 2, (3 * i) % n)); // triple
        t.push((i, 3, (i + n / 2) % n)); // opposite
    }
    t
}

fn main() {
    let n_entities: u32 = 120;
    let mut triples = structured_kg(n_entities);
    let mut rng = SmallRng::seed_from_u64(0);
    triples.shuffle(&mut rng);
    let n_test = triples.len() / 10;
    let (test, train) = triples.split_at(n_test);
    let known: HashSet<(u32, u32, u32)> = triples.iter().copied().collect();
    println!(
        "structured KG: {} entities, 4 relations, {} train / {} test triples",
        n_entities,
        train.len(),
        test.len()
    );

    let n = n_entities as usize;
    let r = 4;
    let sampler = UniformSampler {
        num_entities: n as u32,
    };
    let dim = 32;
    let epochs = 200;
    let lr = 0.05;

    let mut models: Vec<Box<dyn RelationModel>> = vec![
        Box::new(TransE::new(n, r, dim, 1.0, &mut rng)),
        Box::new(TransH::new(n, r, dim, 1.0, &mut rng)),
        Box::new(TransD::new(n, r, dim, 1.0, &mut rng)),
        Box::new(DistMult::new(n, r, dim, &mut rng)),
        Box::new(ComplEx::new(n, r, dim, &mut rng)),
        Box::new(RotatE::new(n, r, dim, 2.0, &mut rng)),
        Box::new(TuckEr::new(n, r, 16, &mut rng)),
    ];

    println!(
        "\n{:10} {:>8} {:>8} {:>8} {:>8}",
        "Model", "Hits@1", "Hits@10", "MR", "MRR"
    );
    for model in models.iter_mut() {
        for _ in 0..epochs {
            train_epoch(model.as_mut(), train, &sampler, lr, 5, &mut rng);
        }
        // Evaluate on a subsample to keep the example quick.
        let eval = evaluate_link_prediction(
            model.as_ref(),
            &test[..test.len().min(40)],
            n as u32,
            &known,
        );
        println!(
            "{:10} {:>8.3} {:>8.3} {:>8.1} {:>8.3}",
            model.name(),
            eval.hits1,
            eval.hits10,
            eval.mr,
            eval.mrr
        );
    }
}
