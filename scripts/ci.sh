#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has zero external
# dependencies, so an empty cargo registry cache must be enough to build,
# test and format-check everything.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
