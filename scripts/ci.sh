#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has zero external
# dependencies, so an empty cargo registry cache must be enough to build,
# test and format-check everything.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check

# Kernel smoke gate: proves the tiled/top-k kernels bit-identical to the
# naive reference on a fixed seed (exits non-zero on divergence), then runs
# one tiny timing grid. Budget: well under 30 s.
cargo run --release --offline -p openea-bench -- kernels --smoke --no-out
