#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has zero external
# dependencies, so an empty cargo registry cache must be enough to build,
# test and format-check everything.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Kernel smoke gate: proves the tiled/top-k kernels bit-identical to the
# naive reference on a fixed seed — on every ISA backend the host supports
# (scalar/SSE2/AVX2, via the dispatch override) — then runs one tiny timing
# grid. Exits non-zero on any divergence. Budget: well under 30 s.
cargo run --release --offline -p openea-bench -- kernels --smoke --no-out

# Training smoke gate: proves the batched trainer bit-identical to the serial
# reference (batch size 1) and across thread counts {1,2,8} for every model
# on the gradient pathway, times one tiny grid, then enforces the throughput
# ratchet: batched TransE at one thread must stay >= 1.0x the serial
# reference (the per-pair slot arenas this replaced sat at ~0.54x; that
# regression must not come back). Budget: a few seconds.
cargo run --release --offline -p openea-bench -- training --smoke --no-out

# Driver-engine smoke gate: proves the shared hook-based engine honours its
# budget contract (wall-clock and epoch deadlines stop gracefully with
# StopReason::DeadlineExceeded, a zero-epoch run still yields a checkpoint)
# on a real registry approach. Budget: a few seconds.
cargo run --release --offline -p openea-bench -- approaches --smoke --no-out

# Serving smoke gate: trains a small run with snapshot checkpointing, loads
# the artifact back, and proves batched/cached query answers bit-identical
# to the dense similarity path before a short HTTP load replay with a p99
# latency sanity bound. Then the concurrency gate: an open-loop generator
# drives 32 keep-alive connections (well past the 8-thread pool) against
# both server modes; the epoll reactor must answer cleanly and deliver at
# least the blocking thread-per-connection baseline's QPS. Budget: ~4 s.
cargo run --release --offline -p openea-bench -- serve --smoke --no-out

# Two-stage index smoke gate: proves IVF candidate generation + exact
# re-rank bit-identical to the dense sweep at nprobe=nlist (all four
# metrics), then checks a tiny recall curve recovers the exact top-10.
# Budget: well under 5 s.
cargo run --release --offline -p openea-bench -- ann --smoke --no-out

# Hot-swap smoke gate: Zipf replay over HTTP while /admin/reload walks a
# chain of >= 3 artifact flips; gates zero dropped, zero stale-generation
# and zero bit-divergent answers across every flip, and that /stats agrees
# on the reload count and final generation. Budget: well under 5 s.
cargo run --release --offline -p openea-bench -- swap --smoke --no-out

# Live-pipeline smoke gate: a tiny evolution trace (2 delta steps) drives
# warm-start delta-training end to end — each generation's lineage-stamped
# artifact is flipped in live by the snapshot watcher while replay clients
# verify zero dropped / stale / bit-divergent answers, delta Hits@1 lands
# within 2 points of a full retrain at <= 25% of its epochs, and the
# /stats freshness gauges match the artifact lineage. Budget: ~1 s.
cargo run --release --offline -p openea-bench -- live --smoke --no-out
